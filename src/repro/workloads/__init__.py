"""Workload generation: topologies and dynamic perturbation scripts."""

from .events import (
    WorkloadEvent,
    WorkloadScript,
    periodic_refresh_workload,
    random_failure_workload,
)
from .topologies import (
    as_hierarchy_topology,
    full_mesh_topology,
    grid_topology,
    labeled_edges,
    line_topology,
    random_topology,
    ring_topology,
    star_topology,
    to_edge_list,
)

__all__ = [
    "WorkloadEvent",
    "WorkloadScript",
    "as_hierarchy_topology",
    "full_mesh_topology",
    "grid_topology",
    "labeled_edges",
    "line_topology",
    "periodic_refresh_workload",
    "random_failure_workload",
    "random_topology",
    "ring_topology",
    "star_topology",
    "to_edge_list",
]
