"""A transition-system (linear-logic style) view of NDlog programs.

Paper Sections 4.2/4.3: extending NDlog with linear logic lets the
specification be read as a set of *state-transition* rules over the routing
tables — soft-state facts are resources that are consumed and reproduced —
which in turn makes the specification directly amenable to model checking
(arcs 6 and 8 of Figure 1).

This module realizes that reading operationally:

* a :class:`State` is an immutable snapshot of all tables plus a logical
  clock;
* a :class:`Transition` is either a **rule firing** (body facts are read,
  the head fact is produced; soft-state body facts marked *linear* are
  consumed, which is the linear-logic twist) or a **clock tick** that expires
  soft-state facts whose lifetime has elapsed;
* :class:`TransitionSystem` enumerates the successors of a state, which
  :mod:`repro.fvn.modelcheck` explores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..logic.bmc import FunctionRegistry
from ..ndlog.ast import Program
from ..ndlog.functions import builtin_registry
from ..ndlog.seminaive import RuleEngine
from ..ndlog.store import Database


@dataclass(frozen=True)
class State:
    """An immutable snapshot of the system: facts per predicate plus a clock.

    Soft-state facts carry their insertion time so ticks can expire them.
    """

    facts: frozenset[tuple[str, tuple, float]]  # (predicate, values, inserted_at)
    clock: float = 0.0

    @staticmethod
    def initial(facts: Iterable[tuple[str, tuple]], clock: float = 0.0) -> "State":
        return State(frozenset((p, tuple(v), clock) for p, v in facts), clock)

    def rows(self, predicate: str) -> set[tuple]:
        return {values for p, values, _ in self.facts if p == predicate}

    def predicates(self) -> set[str]:
        return {p for p, _, _ in self.facts}

    def holds(self, predicate: str, values: tuple) -> bool:
        return any(p == predicate and v == tuple(values) for p, v, _ in self.facts)

    def fact_count(self) -> int:
        return len(self.facts)

    def to_database(self, program: Program) -> Database:
        db = Database()
        for decl in program.materialized.values():
            db.declare_from(decl)
        for predicate, values, inserted in self.facts:
            db.table(predicate).insert(values, inserted)
        return db

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = sorted(f"{p}{v}" for p, v, _ in self.facts)
        return f"State(t={self.clock}, {', '.join(parts)})"


@dataclass(frozen=True)
class Transition:
    """One enabled transition out of a state."""

    kind: str  # "fire" | "tick"
    rule: Optional[str]
    produced: tuple[tuple[str, tuple], ...]
    consumed: tuple[tuple[str, tuple], ...]
    target: State

    def label(self) -> str:
        if self.kind == "tick":
            return f"tick->{self.target.clock}"
        produced = ",".join(f"{p}{v}" for p, v in self.produced)
        return f"{self.rule}: {produced}"


class TransitionSystem:
    """Successor-state enumeration for an NDlog program.

    ``linear_predicates`` marks relations whose facts are consumed by rules
    that read them (the linear-logic treatment of soft state); by default all
    soft-state relations (finite lifetime in ``materialize``) are linear.
    ``tick`` controls the clock-advance granularity for expiry transitions.
    """

    def __init__(
        self,
        program: Program,
        *,
        linear_predicates: Optional[Sequence[str]] = None,
        tick: float = 1.0,
        registry: Optional[FunctionRegistry] = None,
    ) -> None:
        program.check()
        self.program = program
        self.tick = tick
        self.engine = RuleEngine(registry or builtin_registry())
        if linear_predicates is None:
            linear_predicates = [
                decl.predicate
                for decl in program.materialized.values()
                if decl.is_soft_state
            ]
        self.linear_predicates = frozenset(linear_predicates)

    # ------------------------------------------------------------------
    # Initial state
    # ------------------------------------------------------------------
    def initial_state(self, extra_facts: Iterable[tuple[str, tuple]] = ()) -> State:
        facts = [(f.predicate, tuple(f.values)) for f in self.program.facts]
        facts.extend((p, tuple(v)) for p, v in extra_facts)
        return State.initial(facts)

    # ------------------------------------------------------------------
    # Successors
    # ------------------------------------------------------------------
    def successors(self, state: State) -> Iterator[Transition]:
        """Enumerate rule firings (one new head fact each) and the clock tick."""

        db = state.to_database(self.program)
        for rule in self.program.rules:
            for firing in self.engine.fire_rule(rule, db):
                produced = (firing.predicate, firing.values)
                if state.holds(*produced):
                    continue
                consumed: list[tuple[str, tuple]] = []
                if self.linear_predicates:
                    # consume the linear body facts that matched: approximate
                    # by consuming every linear fact of the body's predicates
                    # that appears in the produced tuple's derivation support.
                    for lit in rule.positive_literals:
                        if lit.predicate in self.linear_predicates:
                            for row in state.rows(lit.predicate):
                                consumed.append((lit.predicate, row))
                new_facts = set(state.facts)
                for predicate, values in consumed:
                    new_facts = {
                        f for f in new_facts if not (f[0] == predicate and f[1] == values)
                    }
                new_facts.add((produced[0], produced[1], state.clock))
                target = State(frozenset(new_facts), state.clock)
                yield Transition(
                    kind="fire",
                    rule=rule.name,
                    produced=(produced,),
                    consumed=tuple(consumed),
                    target=target,
                )
        # clock tick: expire soft state whose lifetime elapsed
        expired: list[tuple[str, tuple]] = []
        new_clock = state.clock + self.tick
        remaining = set()
        for predicate, values, inserted in state.facts:
            lifetime = self.program.lifetime_of(predicate)
            if lifetime != float("inf") and new_clock >= inserted + lifetime:
                expired.append((predicate, values))
            else:
                remaining.add((predicate, values, inserted))
        target = State(frozenset(remaining), new_clock)
        if expired or remaining != state.facts or True:
            yield Transition(
                kind="tick",
                rule=None,
                produced=(),
                consumed=tuple(expired),
                target=target,
            )

    def enabled_rules(self, state: State) -> list[str]:
        """Names of rules with at least one firing enabled in ``state``."""

        db = state.to_database(self.program)
        names: list[str] = []
        for rule in self.program.rules:
            if any(True for _ in self.engine.fire_rule(rule, db)):
                names.append(rule.name)
        return names
