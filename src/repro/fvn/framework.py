"""The FVN framework: orchestrating design → specification → verification →
implementation (Figure 1 of the paper).

:class:`FVN` wires the repository's pieces into the paper's pipeline and
records which arcs of Figure 1 were exercised, so the end-to-end experiment
(F1) can demonstrate the full loop on a real protocol:

===  ==========================================================
arc  meaning (and the method that realizes it here)
===  ==========================================================
1    properties / invariants written as logic (``add_property``)
2    network meta-model → logical specification (``specify_components`` /
     ``design_algebra``)
3    verified logical specification → NDlog program (``generate_ndlog``)
4    NDlog program → logical specification (``specify_ndlog``)
5    static verification with the theorem prover (``verify``)
6    logical specification → model-checkable transition system
     (``transition_system`` / ``model_check``)
7    NDlog program → protocol execution (``execute``)
8    execution/model feedback to verification (counterexample search inside
     ``verify`` with finite instances)
===  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..dn.engine import DistributedEngine, EngineConfig
from ..dn.network import Topology
from ..dn.trace import Trace
from ..logic.theory import Theory
from ..metarouting.algebra import RoutingAlgebra
from ..metarouting.obligations import InstantiationResult, instantiate
from ..ndlog.ast import Program
from .components import CompositeComponent
from .linear import TransitionSystem
from .logic_to_ndlog import SchemaAnnotation, composite_to_program
from .modelcheck import ModelCheckResult, check_invariant
from .ndlog_to_logic import program_to_theory
from .properties import PropertySpec
from .verification import VerificationManager, VerificationReport


@dataclass
class PipelineRecord:
    """Which arcs of Figure 1 have been exercised, with short descriptions."""

    arcs: dict[int, str] = field(default_factory=dict)

    def mark(self, arc: int, description: str) -> None:
        self.arcs[arc] = description

    @property
    def exercised(self) -> list[int]:
        return sorted(self.arcs)

    def complete(self, required: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8)) -> bool:
        return all(arc in self.arcs for arc in required)

    def summary(self) -> str:
        lines = ["FVN pipeline arcs exercised:"]
        for arc in sorted(self.arcs):
            lines.append(f"  arc {arc}: {self.arcs[arc]}")
        return "\n".join(lines)


class FVN:
    """One FVN workflow instance for one protocol design."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.record = PipelineRecord()
        self.properties: list[PropertySpec] = []
        self.meta_model: Optional[RoutingAlgebra] = None
        self.meta_result: Optional[InstantiationResult] = None
        self.components: Optional[CompositeComponent] = None
        self.theory: Optional[Theory] = None
        self.program: Optional[Program] = None
        self.verification: Optional[VerificationReport] = None
        self.execution: Optional[DistributedEngine] = None

    # ------------------------------------------------------------------
    # Design phase
    # ------------------------------------------------------------------
    def design_algebra(self, algebra: RoutingAlgebra, *, sample: int = 24) -> InstantiationResult:
        """Register (and check) the protocol's metarouting meta-model."""

        self.meta_model = algebra
        self.meta_result = instantiate(algebra, sample=sample)
        self.record.mark(2, f"meta-model {algebra.name}: "
                            f"{self.meta_result.discharged}/{self.meta_result.total} obligations discharged")
        return self.meta_result

    def design_components(self, composite: CompositeComponent) -> CompositeComponent:
        """Register the protocol's component-based conceptual model."""

        self.components = composite
        return composite

    def add_property(self, spec: PropertySpec) -> PropertySpec:
        """Register a desired property (arc 1)."""

        self.properties.append(spec)
        self.record.mark(1, f"{len(self.properties)} properties specified")
        return spec

    # ------------------------------------------------------------------
    # Specification phase
    # ------------------------------------------------------------------
    def specify_components(self) -> Theory:
        """Formalize the registered component model as a theory (arc 2)."""

        if self.components is None:
            raise ValueError("no component model registered")
        self.theory = self.components.theory()
        self.record.mark(2, f"component model {self.components.name} formalized "
                            f"({len(self.theory.definitions)} definitions)")
        return self.theory

    def use_ndlog(self, program: Program) -> Program:
        """Register a hand-written NDlog program (the arc-4-first workflow)."""

        self.program = program
        return program

    def specify_ndlog(self) -> Theory:
        """Compile the registered NDlog program into a theory (arc 4)."""

        if self.program is None:
            raise ValueError("no NDlog program registered")
        self.theory = program_to_theory(self.program)
        self.record.mark(
            4,
            f"NDlog program {self.program.name} compiled to theory "
            f"({len(self.theory.definitions)} definitions, {len(self.theory.axioms)} axioms)",
        )
        return self.theory

    def generate_ndlog(
        self, *, schema: Optional[SchemaAnnotation] = None, name: Optional[str] = None
    ) -> Program:
        """Generate an NDlog program from the verified component model (arc 3)."""

        if self.components is None:
            raise ValueError("no component model registered")
        self.program = composite_to_program(self.components, schema=schema, program_name=name)
        self.record.mark(3, f"generated NDlog program {self.program.name} "
                            f"({len(self.program.rules)} rules)")
        return self.program

    # ------------------------------------------------------------------
    # Verification phase
    # ------------------------------------------------------------------
    def verify(
        self,
        *,
        instances: Sequence[Iterable[tuple[str, tuple]]] = (),
        use_script: bool = True,
    ) -> VerificationReport:
        """Prove the registered properties against the specification (arc 5),
        cross-checking on finite instances when provided (arc 8)."""

        if self.program is None:
            raise ValueError("no NDlog program to verify against")
        if self.theory is None:
            self.specify_ndlog()
        manager = VerificationManager(self.program, theory=self.theory)
        self.verification = manager.verify(
            self.properties, instances=instances, use_script=use_script
        )
        self.record.mark(
            5,
            f"{self.verification.proved_count}/{len(self.verification.verdicts)} properties proved "
            f"({self.verification.automated_fraction:.0%} of steps automated)",
        )
        if instances:
            self.record.mark(8, f"counterexample search over {len(list(instances))} finite instances")
        return self.verification

    def transition_system(self, **kwargs) -> TransitionSystem:
        """The model-checkable transition-system view of the program (arc 6)."""

        if self.program is None:
            raise ValueError("no NDlog program registered")
        system = TransitionSystem(self.program, **kwargs)
        self.record.mark(6, "transition-system view constructed")
        return system

    def model_check(
        self,
        invariant,
        *,
        extra_facts: Iterable[tuple[str, tuple]] = (),
        max_states: int = 2_000,
        max_depth: int = 30,
    ) -> ModelCheckResult:
        """Bounded invariant checking on the transition system (arc 6)."""

        system = self.transition_system()
        result = check_invariant(
            system,
            invariant,
            extra_facts=extra_facts,
            max_states=max_states,
            max_depth=max_depth,
        )
        self.record.mark(6, f"model checking: {result.summary()}")
        return result

    # ------------------------------------------------------------------
    # Implementation phase
    # ------------------------------------------------------------------
    def execute(
        self,
        topology: Topology,
        *,
        config: Optional[EngineConfig] = None,
        extra_facts: Iterable[tuple[str, tuple]] = (),
        until: float = float("inf"),
    ) -> Trace:
        """Run the (generated) NDlog program on the distributed runtime (arc 7)."""

        if self.program is None:
            raise ValueError("no NDlog program registered")
        self.execution = DistributedEngine(self.program, topology, config=config)
        trace = self.execution.run(until=until, extra_facts=extra_facts)
        self.record.mark(
            7,
            f"executed on {topology.node_count} nodes: {trace.message_count} messages, "
            f"converged at t={trace.last_change_time():.3f}s",
        )
        return trace

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> str:
        lines = [f"FVN workflow {self.name!r}", self.record.summary()]
        if self.meta_result is not None:
            lines.append("meta-model: " + self.meta_result.summary())
        if self.verification is not None:
            lines.append(self.verification.summary())
        if self.execution is not None:
            lines.append(self.execution.trace.summary())
        return "\n".join(lines)
