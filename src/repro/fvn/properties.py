"""Property (invariant) constructors for FVN verification.

The FVN workflow has the designer write the protocol's desired properties as
logical statements (arc 1 of Figure 1) and prove them against the generated
specification.  This module provides constructors for the properties the
paper and its companion reports exercise, parameterized by predicate names so
they apply to any program using the standard path-vector/distance-vector
schema:

* :func:`route_optimality` — the paper's ``bestPathStrong`` theorem;
* :func:`route_optimality_weak` — the non-strict variant (no strictly better
  path exists);
* :func:`best_path_is_path` — the selected best route is a real route;
* :func:`path_implies_link` — one-hop soundness: every derived path starts
  with a link the source actually has;
* :func:`cycle_freedom` — derived path vectors never repeat their source;
* :func:`reachability_soundness` — a derived path implies graph reachability.

Each :class:`PropertySpec` carries the formula, an interactive proof script
(the PVS-style step list the paper counts — ``bestPathStrong`` takes 7
steps), and hints for the automated strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..logic.formulas import Formula, atom, conj, exists, forall, implies, le, lt, neg, neq
from ..logic.terms import Var, func


@dataclass
class PropertySpec:
    """A named property with its proof script and automation hints."""

    name: str
    statement: Formula
    script: tuple = ()
    auto_expand: Optional[tuple[str, ...]] = None
    doc: str = ""
    #: Does the paper (or its companion reports) expect this property to hold?
    expected_valid: bool = True

    @property
    def interactive_steps(self) -> int:
        return len(self.script)


def route_optimality(
    *,
    best_predicate: str = "bestPath",
    cost_predicate: str = "bestPathCost",
    path_predicate: str = "path",
    name: str = "bestPathStrong",
) -> PropertySpec:
    """The paper's ``bestPathStrong`` theorem (Section 3.1).

    ``bestPath(S,D,P,C)`` implies no path from S to D is strictly cheaper
    than C.  The interactive script mirrors the 7-step PVS proof: introduce
    the skolem constants and flatten, expand the ``bestPath`` definition,
    flatten the conjunction, instantiate the aggregate lower-bound axiom at
    the skolemized group, split the resulting implication, and close the two
    branches with the decision procedures.
    """

    S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
    C2, P2 = Var("C2"), Var("P2")
    statement = forall(
        (S, D, C, P),
        implies(
            atom(best_predicate, S, D, P, C),
            neg(exists((C2, P2), conj(atom(path_predicate, S, D, P2, C2), lt(C2, C)))),
        ),
    )
    # The 7-step interactive proof (mirroring the PVS script the paper counts):
    # skolemize+flatten, expand the bestPath definition, flatten the resulting
    # conjunction, instantiate the min-aggregate lower-bound axiom at the
    # skolem constants, split the instantiated implication, and close the two
    # branches with the decision procedures.
    script = (
        ("skosimp",),
        ("expand", {"name": best_predicate}),
        ("flatten",),
        ("inst", {"terms": (S, D, C, C2, P2)}),
        ("split",),
        ("assert",),
        ("assert",),
    )
    return PropertySpec(
        name=name,
        statement=statement,
        script=script,
        auto_expand=(best_predicate,),
        doc="Route optimality: the selected best path has minimal cost.",
    )


def route_optimality_weak(
    *,
    best_predicate: str = "bestPath",
    path_predicate: str = "path",
    name: str = "bestPathWeak",
) -> PropertySpec:
    """Weak optimality: every other path costs at least as much."""

    S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
    C2, P2 = Var("C2"), Var("P2")
    statement = forall(
        (S, D, C, P, C2, P2),
        implies(
            conj(atom(best_predicate, S, D, P, C), atom(path_predicate, S, D, P2, C2)),
            le(C, C2),
        ),
    )
    return PropertySpec(
        name=name,
        statement=statement,
        script=(
            ("skosimp",),
            ("expand", {"name": best_predicate}),
            ("flatten",),
            ("inst", {"terms": (S, D, C, C2, P2)}),
            ("split",),
            ("assert",),
            ("assert",),
        ),
        auto_expand=(best_predicate,),
        doc="Weak route optimality: no other path is cheaper.",
    )


def best_path_is_path(
    *,
    best_predicate: str = "bestPath",
    path_predicate: str = "path",
    name: str = "bestPathSound",
) -> PropertySpec:
    """The selected best route is one of the derived routes."""

    S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
    statement = forall(
        (S, D, P, C),
        implies(atom(best_predicate, S, D, P, C), atom(path_predicate, S, D, P, C)),
    )
    return PropertySpec(
        name=name,
        statement=statement,
        script=(("skosimp",), ("expand", {"name": best_predicate}), ("skosimp",)),
        auto_expand=(best_predicate,),
        doc="Soundness: every selected best path is a derived path.",
    )


def path_implies_link(
    *,
    path_predicate: str = "path",
    link_predicate: str = "link",
    name: str = "pathHasLink",
) -> PropertySpec:
    """Every derived path leaves its source over an existing link.

    Proven by induction over the derivation of ``path`` (both clauses of the
    inductive definition start with a ``link`` literal at the source).
    """

    S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
    Z, CL = Var("Z"), Var("CL")
    statement = forall(
        (S, D, P, C),
        implies(
            atom(path_predicate, S, D, P, C),
            exists((Z, CL), atom(link_predicate, S, Z, CL)),
        ),
    )
    return PropertySpec(
        name=name,
        statement=statement,
        script=(("induct", {"predicate": path_predicate}),),
        auto_expand=(),
        doc="One-hop soundness: a path exists only if its source has a link.",
    )


def cycle_freedom(
    *,
    path_predicate: str = "path",
    name: str = "pathCycleFree",
) -> PropertySpec:
    """Derived path vectors never revisit their own source.

    Stated via the ``f_inPath`` helper: for every derived ``path(S,D,P,C)``
    the tail of ``P`` (the concatenated sub-path) does not contain ``S``.
    Proven by induction: the base clause builds a two-node path and the
    recursive clause explicitly checks ``f_inPath(P2,S)=false``.
    """

    S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
    statement = forall(
        (S, D, P, C),
        implies(
            atom(path_predicate, S, D, P, C),
            neq(func("f_inPath", func("f_removeFirst", P), S), True),
        ),
    )
    return PropertySpec(
        name=name,
        statement=statement,
        script=(("induct", {"predicate": path_predicate}),),
        auto_expand=(),
        doc="Loop freedom of derived path vectors.",
        expected_valid=True,
    )


def reachability_soundness(
    *,
    path_predicate: str = "path",
    reachable_predicate: str = "reachable",
    name: str = "pathImpliesReachable",
) -> PropertySpec:
    """A derived path implies graph reachability (paths are not invented)."""

    S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
    statement = forall(
        (S, D, P, C),
        implies(atom(path_predicate, S, D, P, C), atom(reachable_predicate, S, D)),
    )
    return PropertySpec(
        name=name,
        statement=statement,
        script=(("induct", {"predicate": path_predicate}),),
        doc="A derived path implies reachability in the link graph.",
    )


def standard_property_suite(
    *,
    best_predicate: str = "bestPath",
    cost_predicate: str = "bestPathCost",
    path_predicate: str = "path",
    link_predicate: str = "link",
) -> list[PropertySpec]:
    """The default property corpus used by E1/E6: optimality (strong and
    weak), soundness of selection, and one-hop soundness."""

    return [
        route_optimality(
            best_predicate=best_predicate,
            cost_predicate=cost_predicate,
            path_predicate=path_predicate,
        ),
        route_optimality_weak(
            best_predicate=best_predicate, path_predicate=path_predicate
        ),
        best_path_is_path(best_predicate=best_predicate, path_predicate=path_predicate),
        path_implies_link(path_predicate=path_predicate, link_predicate=link_predicate),
    ]
