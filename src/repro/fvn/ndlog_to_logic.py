"""Compiling NDlog programs into logical specifications (arc 4).

Paper Section 3.1: the set of NDlog rules defining a predicate is equivalent
to an inductively defined predicate in PVS — each rule becomes one clause of
the inductive definition, with rule body variables not appearing in the head
becoming clause existentials.  This module implements that translation plus
the treatment of head aggregates:

* a non-aggregate rule ``p(args) :- body`` contributes the clause
  ``EXISTS locals: body``;
* an aggregate rule such as ``bestPathCost(@S,D,min<C>) :- path(@S,D,P,C)``
  is captured by *axioms* describing the aggregate's defining properties —
  for ``min``: a **lower-bound** axiom (the aggregate value is ⩽ every
  group member) and a **witness** axiom (the value is attained by some
  member).  These are exactly the facts the ``bestPathStrong`` proof needs.

The output is a :class:`~repro.logic.theory.Theory` ready for the prover,
mirroring what reference [22] (DNV) generates for PVS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..logic.formulas import (
    Atom,
    Comparison,
    Formula,
    conj,
    eq,
    exists,
    forall,
    ge,
    implies,
    le,
)
from ..logic.inductive import Clause, InductiveDefinition
from ..logic.terms import Var
from ..logic.theory import Theory
from ..ndlog.ast import Assignment, Condition, Literal, NDlogError, Program, Rule


def literal_to_atom(literal: Literal) -> Formula:
    """A body literal as an atom (location specifiers are dropped — the
    logical semantics is location-agnostic, as in the paper's examples)."""

    atom = Atom(literal.predicate, tuple(literal.args))
    if literal.negated:
        from ..logic.formulas import Not

        return Not(atom)
    return atom


def body_item_to_formula(item) -> Formula:
    if isinstance(item, Literal):
        return literal_to_atom(item)
    if isinstance(item, Assignment):
        return eq(item.variable, item.expression)
    if isinstance(item, Condition):
        return Comparison(item.op, item.left, item.right)
    raise NDlogError(f"cannot translate body item {item!r}")


def rule_to_clause(rule: Rule, head_params: Sequence[Var]) -> Clause:
    """One NDlog rule as a clause of its head predicate's inductive definition.

    The clause body equates the canonical head parameters with the rule's
    head argument expressions and conjoins the translated body items; rule
    variables that are not head parameters become clause existentials.
    """

    body_parts: list[Formula] = []
    head_args = rule.head.plain_args()
    for param, arg in zip(head_params, head_args):
        if isinstance(arg, Var) and arg == param:
            continue
        body_parts.append(eq(param, arg))
    for item in rule.body:
        body_parts.append(body_item_to_formula(item))
    body = conj(*body_parts)
    local_vars = tuple(
        v
        for v in sorted(body.free_vars(), key=lambda x: x.name)
        if v not in tuple(head_params)
    )
    return Clause(local_vars, body, name=rule.name)


def _canonical_params(rules: list[Rule]) -> tuple[Var, ...]:
    """Canonical parameter variables for a predicate's definition.

    Prefer the head argument names of the first rule where they are plain,
    distinct variables; otherwise generate ``X1..Xn``.
    """

    first = rules[0]
    args = first.head.plain_args()
    names: list[Var] = []
    used: set[str] = set()
    for index, arg in enumerate(args):
        if isinstance(arg, Var) and arg.name not in used:
            names.append(arg)
            used.add(arg.name)
        else:
            fresh = Var(f"X{index + 1}")
            while fresh.name in used:
                fresh = Var(fresh.name + "_")
            names.append(fresh)
            used.add(fresh.name)
    return tuple(names)


@dataclass
class AggregateAxioms:
    """The generated axioms for one aggregate rule."""

    predicate: str
    lower_bound: Optional[Formula]
    upper_bound: Optional[Formula]
    witness: Formula
    membership: Formula


def aggregate_rule_axioms(rule: Rule) -> AggregateAxioms:
    """Axiomatize an aggregate rule (``min``/``max``/``count`` heads).

    For ``agg(@G.., min<V>) :- body``:

    * lower bound:  ``agg(G.., V) ∧ body[V→V2] ⇒ V ≤ V2``
    * witness:      ``agg(G.., V) ⇒ ∃ locals: body``
    * membership:   ``body ⇒ ∃ V: agg(G.., V)``  (the group is represented)

    ``max`` flips the bound; ``count``/``sum``/``avg`` only get witness and
    membership (their numeric value is not axiomatized — sufficient for the
    properties in this reproduction, and easy to extend).
    """

    aggs = rule.head.aggregates
    if len(aggs) != 1:
        raise NDlogError(
            f"rule {rule.name}: exactly one aggregate per head is supported "
            f"({len(aggs)} found)"
        )
    agg_index, aggregate = aggs[0]
    head_args = list(rule.head.plain_args())
    agg_var = aggregate.variable
    group_args = [a for i, a in enumerate(head_args) if i != agg_index]

    body_formula = conj(*(body_item_to_formula(item) for item in rule.body))
    body_vars = sorted(body_formula.free_vars(), key=lambda v: v.name)
    # Group variables keep the head's argument order so generated axioms and
    # interactive proof scripts agree on quantifier positions.
    group_vars: list[Var] = []
    for arg in group_args:
        for v in arg.free_vars():
            if v not in group_vars:
                group_vars.append(v)
    local_vars = [v for v in body_vars if v not in group_vars and v != agg_var]

    head_atom = Atom(rule.head.predicate, tuple(head_args))

    # lower / upper bound over a renamed copy of the body
    rename = {agg_var: Var(agg_var.name + "2")}
    for v in local_vars:
        rename[v] = Var(v.name + "2")
    renamed_body = body_formula.substitute(rename)
    renamed_locals = [rename[v] for v in local_vars]

    lower_bound: Optional[Formula] = None
    upper_bound: Optional[Formula] = None
    quantified = tuple(group_vars) + (agg_var, rename[agg_var]) + tuple(renamed_locals)
    if aggregate.function == "min":
        lower_bound = forall(
            quantified,
            implies(conj(head_atom, renamed_body), le(agg_var, rename[agg_var])),
        )
    elif aggregate.function == "max":
        upper_bound = forall(
            quantified,
            implies(conj(head_atom, renamed_body), ge(agg_var, rename[agg_var])),
        )

    witness = forall(
        tuple(group_vars) + (agg_var,),
        implies(head_atom, exists(tuple(local_vars), body_formula) if local_vars else body_formula),
    )
    membership = forall(
        tuple(group_vars) + (agg_var,) + tuple(local_vars),
        implies(
            body_formula,
            exists((Var(agg_var.name + "_best"),), Atom(
                rule.head.predicate,
                tuple(
                    Var(agg_var.name + "_best") if i == agg_index else a
                    for i, a in enumerate(head_args)
                ),
            )),
        ),
    )
    return AggregateAxioms(
        predicate=rule.head.predicate,
        lower_bound=lower_bound,
        upper_bound=upper_bound,
        witness=witness,
        membership=membership,
    )


def program_to_theory(program: Program, *, name: Optional[str] = None) -> Theory:
    """Compile an NDlog program into a theory (arc 4 of Figure 1).

    Derived predicates defined only by non-aggregate rules become inductive
    definitions; aggregate-defined predicates contribute aggregate axioms.
    Base (EDB) predicates stay uninterpreted, exactly as in the paper's PVS
    encoding where ``link`` is an uninterpreted relation.
    """

    program.check()
    theory = Theory(name or f"{program.name}_theory")
    for predicate in sorted(program.derived_predicates()):
        rules = program.rules_for(predicate)
        aggregate_rules = [r for r in rules if r.head.has_aggregate]
        plain_rules = [r for r in rules if not r.head.has_aggregate]
        if aggregate_rules and plain_rules:
            raise NDlogError(
                f"predicate {predicate!r} mixes aggregate and non-aggregate rules"
            )
        if aggregate_rules:
            for rule in aggregate_rules:
                axioms = aggregate_rule_axioms(rule)
                if axioms.lower_bound is not None:
                    theory.axiom(f"{predicate}_{rule.name}_lower_bound", axioms.lower_bound)
                if axioms.upper_bound is not None:
                    theory.axiom(f"{predicate}_{rule.name}_upper_bound", axioms.upper_bound)
                theory.axiom(f"{predicate}_{rule.name}_witness", axioms.witness)
                theory.axiom(f"{predicate}_{rule.name}_membership", axioms.membership)
            continue
        params = _canonical_params(plain_rules)
        clauses = tuple(rule_to_clause(rule, params) for rule in plain_rules)
        theory.define(
            InductiveDefinition(
                predicate=predicate,
                params=params,
                clauses=clauses,
                doc=f"Generated from NDlog rules {', '.join(r.name for r in plain_rules)}.",
            )
        )
    return theory
