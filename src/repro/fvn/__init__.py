"""FVN core: the paper's primary contribution, tying logic, NDlog, and
execution together.

Submodules implement the arcs of the paper's Figure 1:

* :mod:`repro.fvn.components` — component-based network models (§3.2);
* :mod:`repro.fvn.ndlog_to_logic` — NDlog → logical specification (arc 4);
* :mod:`repro.fvn.logic_to_ndlog` — component specification → NDlog (arc 3);
* :mod:`repro.fvn.properties` — the property/invariant library (arc 1);
* :mod:`repro.fvn.verification` — theorem proving + counterexample search
  (arcs 5 and 8);
* :mod:`repro.fvn.soft_state_rewrite` — the soft-state encoding of §4.2;
* :mod:`repro.fvn.linear` / :mod:`repro.fvn.modelcheck` — the
  transition-system view and bounded model checking (arcs 6 and 8);
* :mod:`repro.fvn.framework` — the orchestrating :class:`FVN` workflow.
"""

from .components import (
    Component,
    ComponentConstraint,
    ComponentError,
    CompositeComponent,
    Port,
    Wire,
)
from .framework import FVN, PipelineRecord
from .linear import State, Transition, TransitionSystem
from .logic_to_ndlog import (
    SchemaAnnotation,
    TranslationEquivalence,
    check_translation_equivalence,
    component_to_rules,
    composite_to_program,
)
from .modelcheck import (
    ModelCheckResult,
    check_eventually_expires,
    check_invariant,
    check_reachable,
)
from .monitors import (
    MONITOR_KINDS,
    PATH_VECTOR_SCHEMA,
    POLICY_SCHEMA,
    MonitorSchema,
    MonitorViolation,
    RuntimeMonitor,
    build_monitor,
    monitor_for_property,
    monitors_from_properties,
    posthoc_violations,
    schema_for_program,
    standard_monitors,
)
from .ndlog_to_logic import (
    AggregateAxioms,
    aggregate_rule_axioms,
    program_to_theory,
    rule_to_clause,
)
from .properties import (
    PropertySpec,
    best_path_is_path,
    cycle_freedom,
    path_implies_link,
    reachability_soundness,
    route_optimality,
    route_optimality_weak,
    standard_property_suite,
)
from .soft_state_rewrite import RewriteMetrics, SoftStateRewrite, rewrite_soft_state
from .verification import PropertyVerdict, VerificationManager, VerificationReport

__all__ = [
    "AggregateAxioms",
    "Component",
    "MONITOR_KINDS",
    "MonitorSchema",
    "MonitorViolation",
    "PATH_VECTOR_SCHEMA",
    "POLICY_SCHEMA",
    "RuntimeMonitor",
    "build_monitor",
    "monitor_for_property",
    "monitors_from_properties",
    "posthoc_violations",
    "schema_for_program",
    "standard_monitors",
    "ComponentConstraint",
    "ComponentError",
    "CompositeComponent",
    "FVN",
    "ModelCheckResult",
    "PipelineRecord",
    "Port",
    "PropertySpec",
    "PropertyVerdict",
    "RewriteMetrics",
    "SchemaAnnotation",
    "SoftStateRewrite",
    "State",
    "Transition",
    "TransitionSystem",
    "TranslationEquivalence",
    "VerificationManager",
    "VerificationReport",
    "Wire",
    "aggregate_rule_axioms",
    "best_path_is_path",
    "check_eventually_expires",
    "check_invariant",
    "check_reachable",
    "check_translation_equivalence",
    "component_to_rules",
    "composite_to_program",
    "cycle_freedom",
    "path_implies_link",
    "program_to_theory",
    "reachability_soundness",
    "route_optimality",
    "route_optimality_weak",
    "rewrite_soft_state",
    "rule_to_clause",
    "standard_property_suite",
]
