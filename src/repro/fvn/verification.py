"""The verification manager: combining theorem proving and model finding.

Paper Section 4.3 argues for a methodology that combines complete-but-manual
theorem proving with automatic-but-incomplete model checking /
counterexample search.  :class:`VerificationManager` is that combination for
this reproduction:

* it proves :class:`~repro.fvn.properties.PropertySpec` items against a
  generated theory — first replaying the interactive script, then letting
  the automated strategy (``grind``) finish, recording the step accounting
  (interactive vs automated) experiment E6 reports;
* it cross-checks each property on finite instances by evaluating the NDlog
  program and searching for counterexamples (the model-checking side), which
  both catches unsound specifications and produces concrete traces when a
  property genuinely fails.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..logic.bmc import Counterexample, FiniteModel, find_counterexample
from ..logic.prover import ProofResult, ProofSession
from ..logic.theory import Theory
from ..ndlog.ast import Program
from ..ndlog.functions import builtin_registry
from ..ndlog.seminaive import evaluate
from ..ndlog.store import Database
from .ndlog_to_logic import program_to_theory
from .properties import PropertySpec


@dataclass
class PropertyVerdict:
    """Everything learned about one property."""

    property: PropertySpec
    proof: Optional[ProofResult] = None
    counterexample: Optional[Counterexample] = None
    model_checked_instances: int = 0
    elapsed_seconds: float = 0.0

    @property
    def proved(self) -> bool:
        return bool(self.proof and self.proof.proved)

    @property
    def refuted(self) -> bool:
        return self.counterexample is not None

    @property
    def status(self) -> str:
        if self.proved and not self.refuted:
            return "proved"
        if self.refuted:
            return "refuted"
        return "open"

    def summary(self) -> str:
        parts = [f"{self.property.name}: {self.status}"]
        if self.proof:
            parts.append(
                f"{self.proof.total_steps} steps "
                f"({self.proof.interactive_steps} interactive / {self.proof.automated_steps} automated)"
            )
        if self.counterexample:
            parts.append(str(self.counterexample))
        parts.append(f"{self.elapsed_seconds * 1000:.1f} ms")
        return ", ".join(parts)


@dataclass
class VerificationReport:
    """Aggregate result over a property corpus."""

    program: str
    verdicts: list[PropertyVerdict] = field(default_factory=list)

    @property
    def proved_count(self) -> int:
        return sum(1 for v in self.verdicts if v.proved)

    @property
    def refuted_count(self) -> int:
        return sum(1 for v in self.verdicts if v.refuted)

    @property
    def total_steps(self) -> int:
        return sum(v.proof.total_steps for v in self.verdicts if v.proof)

    @property
    def interactive_steps(self) -> int:
        return sum(v.proof.interactive_steps for v in self.verdicts if v.proof)

    @property
    def automated_steps(self) -> int:
        return sum(v.proof.automated_steps for v in self.verdicts if v.proof)

    @property
    def automated_fraction(self) -> float:
        total = self.total_steps
        return self.automated_steps / total if total else 0.0

    def summary(self) -> str:
        lines = [
            f"verification of {self.program}: {self.proved_count}/{len(self.verdicts)} proved, "
            f"{self.refuted_count} refuted, automation {self.automated_fraction:.0%}"
        ]
        lines.extend("  " + v.summary() for v in self.verdicts)
        return "\n".join(lines)


class VerificationManager:
    """Verifies properties of an NDlog program (arc 4 + arc 5 + arc 6)."""

    def __init__(
        self,
        program: Program,
        *,
        theory: Optional[Theory] = None,
        extra_axioms: Optional[dict] = None,
    ) -> None:
        self.program = program
        self.theory = theory or program_to_theory(program)
        if extra_axioms:
            for name, formula in extra_axioms.items():
                self.theory.axiom(name, formula)

    # ------------------------------------------------------------------
    # Theorem proving
    # ------------------------------------------------------------------
    def prove_property(
        self,
        spec: PropertySpec,
        *,
        use_script: bool = True,
        auto: bool = True,
        max_steps: int = 400,
    ) -> ProofResult:
        """Prove one property: replay its interactive script, then ``grind``."""

        context = self.theory.context()
        assumptions = list(self.theory.all_axioms().values())
        session = ProofSession(context, spec.statement, name=spec.name, assumptions=assumptions)
        if use_script:
            for entry in spec.script:
                if session.is_complete:
                    break
                tactic, params = entry[0], (entry[1] if len(entry) > 1 else {})
                try:
                    session.apply(tactic, **params)
                except Exception:
                    break  # fall back to the automated strategy
        if auto and not session.is_complete:
            session.grind(auto_expand=spec.auto_expand, max_steps=max_steps)
        return session.result()

    def prove_with_minimal_script(
        self, spec: PropertySpec, *, max_steps: int = 400
    ) -> tuple[ProofResult, int]:
        """Prove a property with as few interactive steps as possible.

        This is the measurement behind the paper's "typically two-thirds of
        the proof steps can be automated" (Section 4.3): try the fully
        automated strategy first; if it cannot finish, replay the interactive
        script one step at a time, attempting automation after each prefix,
        and stop at the shortest prefix that lets ``grind`` close the proof.
        Returns the proof result and the number of interactive steps needed.
        """

        context = self.theory.context()
        assumptions = list(self.theory.all_axioms().values())
        for prefix_length in range(0, len(spec.script) + 1):
            session = ProofSession(
                context, spec.statement, name=spec.name, assumptions=assumptions
            )
            failed_prefix = False
            for entry in spec.script[:prefix_length]:
                if session.is_complete:
                    break
                tactic, params = entry[0], (entry[1] if len(entry) > 1 else {})
                try:
                    session.apply(tactic, **params)
                except Exception:
                    failed_prefix = True
                    break
            if failed_prefix:
                continue
            if not session.is_complete:
                session.grind(auto_expand=spec.auto_expand, max_steps=max_steps)
            if session.is_complete:
                return session.result(), prefix_length
        result = self.prove_property(spec, use_script=True, auto=True, max_steps=max_steps)
        return result, len(spec.script)

    # ------------------------------------------------------------------
    # Finite-instance model checking
    # ------------------------------------------------------------------
    def finite_model(self, facts: Iterable[tuple[str, tuple]]) -> FiniteModel:
        """Evaluate the program on concrete facts and wrap the result as a
        finite model over which properties can be evaluated."""

        db: Database = evaluate(self.program, list(facts))
        model = FiniteModel(registry=builtin_registry())
        for predicate in db.predicates():
            for row in db.rows(predicate):
                model.add_fact(predicate, row)
        return model

    def search_counterexample(
        self, spec: PropertySpec, instances: Sequence[Iterable[tuple[str, tuple]]]
    ) -> tuple[Optional[Counterexample], int]:
        """Search finite instances for a counterexample to the property."""

        for index, facts in enumerate(instances):
            model = self.finite_model(facts)
            counterexample = find_counterexample(spec.statement, model)
            if counterexample is not None:
                return counterexample, index + 1
        return None, len(instances)

    # ------------------------------------------------------------------
    # Combined
    # ------------------------------------------------------------------
    def verify(
        self,
        specs: Sequence[PropertySpec],
        *,
        instances: Sequence[Iterable[tuple[str, tuple]]] = (),
        use_script: bool = True,
        auto: bool = True,
    ) -> VerificationReport:
        """Prove and model-check a property corpus."""

        report = VerificationReport(program=self.program.name)
        for spec in specs:
            start = time.perf_counter()
            proof = self.prove_property(spec, use_script=use_script, auto=auto)
            counterexample: Optional[Counterexample] = None
            checked = 0
            if instances:
                counterexample, checked = self.search_counterexample(spec, instances)
            report.verdicts.append(
                PropertyVerdict(
                    property=spec,
                    proof=proof,
                    counterexample=counterexample,
                    model_checked_instances=checked,
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
        return report
