"""Runtime invariant monitors: FVN properties checked *during* execution.

The FVN workflow proves properties of the generated specification offline
(arcs 4–5 of Figure 1) and, in this reproduction, re-checks them post-hoc on
final execution states.  This module closes the remaining gap: the same
safety properties evaluated **incrementally while the protocol runs**, so a
campaign over thousands of seeded executions can report *when* an invariant
first broke instead of only *whether* the final state satisfies it.

Monitors implement the :class:`repro.dn.engine.EngineMonitor` hook protocol:

* ``on_change`` — mirror every recorded tuple insertion/replacement/removal
  (keyed exactly like the node's own tables, via the program's
  ``materialize`` declarations);
* ``on_settle`` — evaluate the invariant for the node that just reached a
  local fixpoint.  Checking only at settle points is what makes runtime
  monitoring sound: mid-drain states are deliberately inconsistent (deletion
  deltas fire against the old database), while every FVN safety property is
  a statement about (locally) quiescent states;
* ``finalize`` — one full-state sweep at the end of the run, which makes the
  monitor's *active* violations agree with a post-hoc property check on the
  final state by construction (:func:`posthoc_violations` runs the identical
  checker over the engine's ground-truth tables for cross-validation).

A violation is *recorded* the first time its signature appears (that is the
first-violation timestamp) and *healed* when a later check no longer finds
it, so transient reconvergence windows and persistent safety failures are
distinguishable in the campaign artifacts.

The monitors correspond to the :mod:`repro.fvn.properties` corpus:

* :class:`RouteValidityMonitor` — ``bestPathSound`` + ``pathHasLink``: every
  selected best route is a currently-derived route whose first hop is a live
  local link;
* :class:`BestAgreementMonitor` — ``bestPathStrong``/``bestPathWeak``: the
  selected cost/rank is exactly the minimum over the node's candidate
  routes, and every candidate group has a selection;
* :class:`CycleFreedomMonitor` — ``pathCycleFree``: no stored path vector
  revisits a node;
* :class:`SoftStateBoundMonitor` — the §4.2 soft-state liveness bound: no
  soft-state row outlives its lifetime by more than a scan interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..ndlog.ast import Program
from .properties import PropertySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dn imports fvn users)
    from ..dn.engine import DistributedEngine


@dataclass(frozen=True, slots=True)
class MonitorViolation:
    """One invariant violation observed at a node.

    ``signature`` identifies the violation across checks (so a persisting
    violation is recorded once, with its first-observation ``time``), and
    ``detail`` is a human-readable description for reports.
    """

    monitor: str
    time: float
    node: object
    signature: tuple
    detail: str


@dataclass(frozen=True)
class MonitorSchema:
    """Predicate names/positions binding monitors to a program's schema.

    The defaults match the paper's path-vector program (``r1``–``r4``);
    :data:`POLICY_SCHEMA` matches the generated policy path-vector program.
    ``best_to_path`` maps positions of a best-route row to the positions of
    the candidate-route row that must support it.
    """

    link_predicate: str = "link"
    path_predicate: str = "path"
    best_predicate: str = "bestPath"
    best_cost_predicate: str = "bestPathCost"
    #: (predicate, position-of-path-vector) pairs checked for cycles
    vector_positions: tuple[tuple[str, int], ...] = (("path", 2), ("bestPath", 2))
    #: best-row position → candidate-row position projection
    best_to_path: tuple[tuple[int, int], ...] = ((0, 0), (1, 1), (2, 2), (3, 3))
    #: position of the path vector in a best-route row (first-hop check)
    best_vector_position: int = 2
    #: position of the minimized value in a best-route row (stale-route
    #: projection — tie-robust comparisons keep (group, value), drop paths)
    best_value_position: int = 3
    #: (source, destination) group positions shared by all route relations
    group_positions: tuple[int, ...] = (0, 1)
    #: position of the minimized value in candidate rows / best-cost rows
    path_value_position: int = 3
    best_cost_value_position: int = 2


PATH_VECTOR_SCHEMA = MonitorSchema()

POLICY_SCHEMA = MonitorSchema(
    path_predicate="route",
    best_predicate="bestRoute",
    best_cost_predicate="bestRouteRank",
    vector_positions=(("route", 2), ("bestRoute", 2)),
    # bestRoute(S,D,P,C,R) is supported by route(S,D,P,C,Pref,R)
    best_to_path=((0, 0), (1, 1), (2, 2), (3, 3), (4, 5)),
    best_vector_position=2,
    best_value_position=4,
    group_positions=(0, 1),
    path_value_position=5,
    best_cost_value_position=2,
)


def schema_for_program(program: Program) -> MonitorSchema:
    """Pick the monitor schema matching a program's head predicates."""

    heads = program.head_predicates()
    if "bestRoute" in heads or "bestRouteRank" in heads:
        return POLICY_SCHEMA
    return PATH_VECTOR_SCHEMA


_ADD_KINDS = frozenset(("insert", "replace"))


class RuntimeMonitor:
    """Base monitor: keyed state mirror, dirty tracking, violation healing.

    Subclasses declare the predicates they watch, maintain any derived
    indexes via :meth:`_row_added` / :meth:`_row_removed`, and report the
    current violations of one node from :meth:`_violations_at`.
    """

    name = "monitor"
    #: history cap — campaigns keep the first occurrences, not every recheck
    max_recorded = 200

    def __init__(self) -> None:
        self.watched: tuple[str, ...] = ()
        self.violations: list[MonitorViolation] = []
        self.dropped = 0
        self.first_violation: Optional[MonitorViolation] = None
        self.finalized_at: Optional[float] = None
        self._engine: Optional["DistributedEngine"] = None
        #: node → predicate → primary key → row (mirror of monitored tables)
        self._mirror: dict[object, dict[str, dict[tuple, tuple]]] = {}
        self._key_getters: dict[str, object] = {}
        self._dirty: set = set()
        #: node → signature → violation currently believed to hold
        self._active: dict[object, dict[tuple, MonitorViolation]] = {}

    # -- hook protocol -----------------------------------------------------
    def attach(self, engine: "DistributedEngine") -> None:
        from ..ndlog.store import _make_key_getter  # storage's own key logic

        self._engine = engine
        for predicate in self.watched:
            decl = engine.program.materialized.get(predicate)
            keys = tuple(k - 1 for k in decl.keys) if decl is not None else ()
            self._key_getters[predicate] = _make_key_getter(keys)

    def on_change(
        self, time: float, node: object, predicate: str, values: tuple, kind: str
    ) -> None:
        if predicate not in self._key_getters:
            return
        rows = self._mirror.setdefault(node, {}).setdefault(predicate, {})
        key = self._key_getters[predicate](values)
        if kind in _ADD_KINDS:
            old = rows.get(key)
            rows[key] = values
            self._row_added(node, predicate, values, old)
        else:
            old = rows.pop(key, None)
            if old is None or old != tuple(values):
                # a removal the mirror never saw asserted (or of a row
                # already replaced under its key) changes nothing
                if old is not None:
                    rows[key] = old
                return
            self._row_removed(node, predicate, old)
        self._dirty.add(node)

    def on_settle(self, time: float, node: object) -> None:
        if node in self._dirty:
            self._dirty.discard(node)
            self._check_node(time, node)

    def finalize(self, time: float) -> None:
        nodes: Iterable[object]
        if self._engine is not None:
            nodes = list(self._engine.nodes)
        else:
            nodes = set(self._mirror) | set(self._active)
        for node in nodes:
            self._check_node(time, node)
        self._dirty.clear()
        self.finalized_at = time

    # -- violation bookkeeping ---------------------------------------------
    def _check_node(self, time: float, node: object) -> None:
        current = dict(self._violations_at(node))
        active = self._active.setdefault(node, {})
        for signature, detail in current.items():
            if signature not in active:
                violation = MonitorViolation(self.name, time, node, signature, detail)
                active[signature] = violation
                if self.first_violation is None:
                    self.first_violation = violation
                if len(self.violations) < self.max_recorded:
                    self.violations.append(violation)
                else:
                    self.dropped += 1
        for signature in [s for s in active if s not in current]:
            del active[signature]
        if not active:
            self._active.pop(node, None)

    def active_violations(self) -> list[MonitorViolation]:
        """Violations believed to hold right now (end-state after finalize)."""

        out = [v for per_node in self._active.values() for v in per_node.values()]
        out.sort(key=lambda v: (repr(v.node), repr(v.signature)))
        return out

    @property
    def ok(self) -> bool:
        return not self._active

    @property
    def first_violation_time(self) -> Optional[float]:
        return self.first_violation.time if self.first_violation is not None else None

    def mirror_rows(self, node: object, predicate: str) -> set[tuple]:
        """The mirrored rows of one predicate at one node (for validation)."""

        return set(self._mirror.get(node, {}).get(predicate, {}).values())

    def report(self) -> dict:
        """A JSON-friendly summary for campaign run records."""

        active = self.active_violations()
        return {
            "monitor": self.name,
            "first_violation_time": self.first_violation_time,
            "violations": len(self.violations) + self.dropped,
            "active_at_end": len(active),
            "examples": [v.detail for v in active[:3]],
        }

    # -- subclass hooks ----------------------------------------------------
    def _row_added(
        self, node: object, predicate: str, row: tuple, old: Optional[tuple]
    ) -> None:
        pass

    def _row_removed(self, node: object, predicate: str, row: tuple) -> None:
        pass

    def _violations_at(self, node: object) -> Iterable[tuple[tuple, str]]:
        return ()


class RouteValidityMonitor(RuntimeMonitor):
    """Every selected best route is a currently-derived candidate route
    whose first hop is a live local link (``bestPathSound`` + ``pathHasLink``
    from :mod:`repro.fvn.properties`, checked at every settle point)."""

    name = "route_validity"

    def __init__(self, schema: MonitorSchema = PATH_VECTOR_SCHEMA) -> None:
        super().__init__()
        self.schema = schema
        self.watched = (
            schema.best_predicate,
            schema.path_predicate,
            schema.link_predicate,
        )
        #: node → projected candidate-row → count
        self._support: dict[object, dict[tuple, int]] = {}
        #: node → neighbour → live-link count
        self._neighbours: dict[object, dict[object, int]] = {}

    def _project(self, row: tuple) -> tuple:
        return tuple(row[p] for _, p in self.schema.best_to_path)

    def _row_added(self, node, predicate, row, old) -> None:
        if predicate == self.schema.path_predicate:
            support = self._support.setdefault(node, {})
            if old is not None:
                self._drop(support, self._project(old))
            projected = self._project(row)
            support[projected] = support.get(projected, 0) + 1
        elif predicate == self.schema.link_predicate:
            neighbours = self._neighbours.setdefault(node, {})
            if old is not None:
                self._drop(neighbours, old[1])
            neighbours[row[1]] = neighbours.get(row[1], 0) + 1

    def _row_removed(self, node, predicate, row) -> None:
        if predicate == self.schema.path_predicate:
            self._drop(self._support.get(node, {}), self._project(row))
        elif predicate == self.schema.link_predicate:
            self._drop(self._neighbours.get(node, {}), row[1])

    @staticmethod
    def _drop(counter: dict, key) -> None:
        remaining = counter.get(key, 0) - 1
        if remaining > 0:
            counter[key] = remaining
        else:
            counter.pop(key, None)

    def _violations_at(self, node):
        schema = self.schema
        best_rows = self._mirror.get(node, {}).get(schema.best_predicate, {})
        if not best_rows:
            return
        support = self._support.get(node, {})
        neighbours = self._neighbours.get(node, {})
        for row in best_rows.values():
            projected = tuple(row[b] for b, _ in schema.best_to_path)
            if support.get(projected, 0) == 0:
                yield (
                    ("unsupported", row),
                    f"{schema.best_predicate}{row} at {node} has no supporting "
                    f"{schema.path_predicate} row",
                )
            vector = row[schema.best_vector_position]
            if isinstance(vector, tuple) and len(vector) >= 2:
                first_hop = vector[1]
                if neighbours.get(first_hop, 0) == 0:
                    yield (
                        ("dead_first_hop", row),
                        f"{schema.best_predicate}{row} at {node} leaves over "
                        f"missing link to {first_hop!r}",
                    )


class BestAgreementMonitor(RuntimeMonitor):
    """The selected cost/rank is the minimum over the node's candidates and
    every candidate group has a selection (``bestPathStrong``/``Weak``)."""

    name = "best_agreement"

    def __init__(self, schema: MonitorSchema = PATH_VECTOR_SCHEMA) -> None:
        super().__init__()
        self.schema = schema
        self.watched = (schema.best_cost_predicate, schema.path_predicate)
        #: node → group → value → count over candidate rows
        self._candidates: dict[object, dict[tuple, dict[object, int]]] = {}

    def _group(self, row: tuple) -> tuple:
        return tuple(row[p] for p in self.schema.group_positions)

    def _row_added(self, node, predicate, row, old) -> None:
        if predicate != self.schema.path_predicate:
            return
        groups = self._candidates.setdefault(node, {})
        if old is not None:
            self._drop(groups, self._group(old), old[self.schema.path_value_position])
        values = groups.setdefault(self._group(row), {})
        value = row[self.schema.path_value_position]
        values[value] = values.get(value, 0) + 1

    def _row_removed(self, node, predicate, row) -> None:
        if predicate != self.schema.path_predicate:
            return
        self._drop(
            self._candidates.get(node, {}),
            self._group(row),
            row[self.schema.path_value_position],
        )

    @staticmethod
    def _drop(groups: dict, group: tuple, value) -> None:
        values = groups.get(group)
        if values is None:
            return
        remaining = values.get(value, 0) - 1
        if remaining > 0:
            values[value] = remaining
        else:
            values.pop(value, None)
        if not values:
            groups.pop(group, None)

    def _violations_at(self, node):
        schema = self.schema
        groups = self._candidates.get(node, {})
        best_rows = self._mirror.get(node, {}).get(schema.best_cost_predicate, {})
        selected: set[tuple] = set()
        for row in best_rows.values():
            group = self._group(row)
            selected.add(group)
            value = row[schema.best_cost_value_position]
            values = groups.get(group)
            if not values:
                yield (
                    ("no_candidates", row),
                    f"{schema.best_cost_predicate}{row} at {node} selects from an "
                    f"empty {schema.path_predicate} group",
                )
            else:
                minimum = min(values)
                if value != minimum:
                    yield (
                        ("not_minimal", row),
                        f"{schema.best_cost_predicate}{row} at {node} is not the "
                        f"minimum candidate value {minimum!r}",
                    )
        for group in groups:
            if group not in selected:
                yield (
                    ("missing_best", group),
                    f"candidate group {group!r} at {node} has no "
                    f"{schema.best_cost_predicate} selection",
                )


class CycleFreedomMonitor(RuntimeMonitor):
    """No stored path vector revisits a node (``pathCycleFree``)."""

    name = "cycle_freedom"

    def __init__(self, schema: MonitorSchema = PATH_VECTOR_SCHEMA) -> None:
        super().__init__()
        self.schema = schema
        self._positions = dict(schema.vector_positions)
        self.watched = tuple(self._positions)
        #: node → (predicate, key) with a cyclic vector
        self._cyclic: dict[object, dict[tuple, tuple]] = {}

    def _row_added(self, node, predicate, row, old) -> None:
        key = (predicate, self._key_getters[predicate](row))
        vector = row[self._positions[predicate]]
        cyclic = isinstance(vector, tuple) and len(set(vector)) != len(vector)
        per_node = self._cyclic.setdefault(node, {})
        if cyclic:
            per_node[key] = row
        else:
            per_node.pop(key, None)

    def _row_removed(self, node, predicate, row) -> None:
        self._cyclic.get(node, {}).pop(
            (predicate, self._key_getters[predicate](row)), None
        )

    def _violations_at(self, node):
        for (predicate, _key), row in self._cyclic.get(node, {}).items():
            yield (
                ("cycle", predicate, row),
                f"{predicate}{row} at {node} has a cyclic path vector",
            )


class SoftStateBoundMonitor(RuntimeMonitor):
    """No soft-state row outlives its lifetime by more than ``slack``.

    Reads the engine's tables directly (expiry timestamps are storage
    bookkeeping the trace does not carry).  ``slack`` defaults to 1.5×
    the engine's expiry-scan interval: a row can legitimately linger up to
    one full scan interval past its expiry before the scan retracts it.
    """

    name = "soft_state_bounds"

    def __init__(self, slack: Optional[float] = None) -> None:
        super().__init__()
        self.slack = slack
        self._clock = 0.0

    def attach(self, engine) -> None:
        super().attach(engine)
        if self.slack is None:
            self.slack = engine.config.expiry_scan_interval * 1.5

    def on_change(self, time, node, predicate, values, kind) -> None:
        self._clock = time
        self._dirty.add(node)

    def _violations_at(self, node):
        if self._engine is None:
            return
        now = self.finalized_at if self.finalized_at is not None else self._clock
        db = self._engine.nodes[node].db
        for predicate in db.predicates():
            table = db.table(predicate)
            if not table.is_soft_state:
                continue
            bound = self.slack or 0.0
            for stored in table.stored():
                if now > stored.expires_at + bound:
                    yield (
                        ("overdue", predicate, stored.values),
                        f"soft-state {predicate}{stored.values} at {node} is "
                        f"{now - stored.expires_at:.3f}s past its lifetime",
                    )

    def finalize(self, time: float) -> None:
        self.finalized_at = time
        nodes = list(self._engine.nodes) if self._engine is not None else []
        for node in nodes:
            self._check_node(time, node)
        self._dirty.clear()


# ----------------------------------------------------------------------
# Construction and adapters
# ----------------------------------------------------------------------

MONITOR_KINDS = (
    "route_validity",
    "best_agreement",
    "cycle_freedom",
    "soft_state_bounds",
)

_MONITOR_CLASSES = {
    "route_validity": RouteValidityMonitor,
    "best_agreement": BestAgreementMonitor,
    "cycle_freedom": CycleFreedomMonitor,
}

#: property name (from :mod:`repro.fvn.properties`) → monitor kind
PROPERTY_MONITORS = {
    "bestPathSound": "route_validity",
    "pathHasLink": "route_validity",
    "bestPathStrong": "best_agreement",
    "bestPathWeak": "best_agreement",
    "pathCycleFree": "cycle_freedom",
}


def build_monitor(
    kind: str, schema: MonitorSchema = PATH_VECTOR_SCHEMA
) -> RuntimeMonitor:
    """Construct a monitor by kind name (see :data:`MONITOR_KINDS`)."""

    if kind == "soft_state_bounds":
        return SoftStateBoundMonitor()
    try:
        return _MONITOR_CLASSES[kind](schema)
    except KeyError:
        raise ValueError(
            f"unknown monitor kind {kind!r}; expected one of {MONITOR_KINDS}"
        ) from None


def standard_monitors(schema: MonitorSchema = PATH_VECTOR_SCHEMA) -> list[RuntimeMonitor]:
    """One monitor of every kind, bound to ``schema``."""

    return [build_monitor(kind, schema) for kind in MONITOR_KINDS]


def monitor_for_property(
    prop: PropertySpec | str, schema: MonitorSchema = PATH_VECTOR_SCHEMA
) -> RuntimeMonitor:
    """The runtime monitor enforcing a named FVN property.

    Adapts the offline property corpus (arc 1) to runtime checking: the
    property's *name* selects the incremental checker that evaluates the
    same invariant on live execution states.
    """

    name = prop.name if isinstance(prop, PropertySpec) else prop
    kind = PROPERTY_MONITORS.get(name)
    if kind is None:
        raise ValueError(
            f"no runtime monitor for property {name!r}; "
            f"known properties: {sorted(PROPERTY_MONITORS)}"
        )
    return build_monitor(kind, schema)


def monitors_from_properties(
    properties: Iterable[PropertySpec | str],
    schema: MonitorSchema = PATH_VECTOR_SCHEMA,
) -> list[RuntimeMonitor]:
    """Monitors for a property suite, deduplicated by monitor kind."""

    kinds: list[str] = []
    for prop in properties:
        name = prop.name if isinstance(prop, PropertySpec) else prop
        kind = PROPERTY_MONITORS.get(name)
        if kind is not None and kind not in kinds:
            kinds.append(kind)
    return [build_monitor(kind, schema) for kind in kinds]


#: Classification labels for campaign monitors (``docs/ANALYSIS.md``).
STATICALLY_PROVEN = "statically_proven"
RUNTIME_MONITORED = "runtime_monitored"


def clean_report(kind: str) -> dict:
    """The report a monitor of ``kind`` produces after a violation-free run.

    Statically-proven monitors are skipped at runtime and recorded with
    exactly this report, so a campaign's ``results.jsonl`` is byte-identical
    whether a clean invariant was checked dynamically or discharged ahead
    of time (monitors are passive observers — detaching one never changes
    the execution itself).
    """

    if kind not in MONITOR_KINDS:
        raise ValueError(
            f"unknown monitor kind {kind!r}; expected one of {MONITOR_KINDS}"
        )
    return {
        "monitor": kind,
        "first_violation_time": None,
        "violations": 0,
        "active_at_end": 0,
        "examples": [],
    }


def classify_monitors(
    program: Program,
    kinds: Iterable[str],
    *,
    policy: Optional[str] = None,
) -> dict[str, str]:
    """``kind -> "statically_proven" | "runtime_monitored"`` for a campaign.

    Runs the static obligation discharge (:mod:`repro.ndlog.analysis.
    discharge`, imported lazily — it pulls in the prover and metarouting
    layers) and marks a monitor proven only when every property backing it
    proved and the policy's routing algebra discharged all obligations.
    """

    from ..ndlog.analysis.discharge import discharge_program

    report = discharge_program(program, policy=policy)
    proven = set(report.proven_monitors)
    return {
        kind: (STATICALLY_PROVEN if kind in proven else RUNTIME_MONITORED)
        for kind in kinds
    }


def posthoc_violations(
    engine: "DistributedEngine",
    kinds: Iterable[str] = MONITOR_KINDS,
    schema: Optional[MonitorSchema] = None,
) -> dict[str, list[MonitorViolation]]:
    """Check the engine's *final* state with fresh monitors.

    Feeds the ground-truth tables of every node into newly-built monitors
    and finalizes them — the classical post-hoc property check, running the
    identical invariant code the runtime monitors use.  Cross-validating a
    runtime monitor against this is how campaigns establish that incremental
    monitoring observed the same end state the stored tables hold.
    """

    if schema is None:
        schema = schema_for_program(engine.original_program)
    at = engine.scheduler.now
    out: dict[str, list[MonitorViolation]] = {}
    for kind in kinds:
        monitor = build_monitor(kind, schema)
        monitor.attach(engine)
        for node_id, node in engine.nodes.items():
            for predicate in monitor.watched:
                for row in node.db.rows(predicate):
                    monitor.on_change(at, node_id, predicate, row, "insert")
        monitor.finalize(at)
        out[kind] = monitor.active_violations()
    return out
