"""Explicit-state bounded model checking over the transition-system view.

Arcs 6 and 8 of Figure 1: once the NDlog specification is read as a
transition system (:mod:`repro.fvn.linear`), standard model-checking queries
apply.  This module provides a small explicit-state bounded checker:

* :func:`check_invariant` — AG p up to a depth/state bound, returning a
  counterexample trace when violated;
* :func:`check_reachable` — EF p, returning a witness trace;
* :func:`check_eventually_expires` — the soft-state sanity property used by
  experiment E7 (every soft-state fact eventually disappears along the
  all-tick path);

all bounded, which is exactly the "incomplete but automatic" regime the
paper contrasts with theorem proving.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .linear import State, Transition, TransitionSystem


StatePredicate = Callable[[State], bool]


@dataclass
class ModelCheckResult:
    """Outcome of a bounded model-checking query."""

    query: str
    holds: bool
    states_explored: int
    depth_reached: int
    bounded: bool
    trace: list[Transition] = field(default_factory=list)
    witness: Optional[State] = None

    def summary(self) -> str:
        status = "holds" if self.holds else "VIOLATED"
        bound = " (bounded)" if self.bounded else ""
        return (
            f"{self.query}: {status}{bound} after {self.states_explored} states, "
            f"depth {self.depth_reached}"
        )


def _explore(
    system: TransitionSystem,
    initial: State,
    *,
    max_states: int,
    max_depth: int,
    stop: Callable[[State], bool],
) -> tuple[Optional[tuple[State, list[Transition]]], int, int, bool]:
    """Breadth-first exploration.  Returns (hit, states_explored, depth, truncated)."""

    seen: set = {(initial.facts, initial.clock)}
    queue: deque[tuple[State, list[Transition], int]] = deque([(initial, [], 0)])
    explored = 0
    max_seen_depth = 0
    truncated = False
    while queue:
        state, path, depth = queue.popleft()
        explored += 1
        max_seen_depth = max(max_seen_depth, depth)
        if stop(state):
            return (state, path), explored, max_seen_depth, truncated
        if depth >= max_depth:
            truncated = True
            continue
        if explored >= max_states:
            truncated = True
            break
        for transition in system.successors(state):
            key = (transition.target.facts, transition.target.clock)
            if key in seen:
                continue
            seen.add(key)
            queue.append((transition.target, path + [transition], depth + 1))
    return None, explored, max_seen_depth, truncated


def check_reachable(
    system: TransitionSystem,
    goal: StatePredicate,
    *,
    initial: Optional[State] = None,
    extra_facts: Iterable[tuple[str, tuple]] = (),
    max_states: int = 5_000,
    max_depth: int = 50,
    query: str = "EF goal",
) -> ModelCheckResult:
    """Is a state satisfying ``goal`` reachable (within the bounds)?"""

    start = initial if initial is not None else system.initial_state(extra_facts)
    hit, explored, depth, truncated = _explore(
        system, start, max_states=max_states, max_depth=max_depth, stop=goal
    )
    if hit is not None:
        state, path = hit
        return ModelCheckResult(query, True, explored, depth, truncated, path, state)
    return ModelCheckResult(query, False, explored, depth, truncated)


def check_invariant(
    system: TransitionSystem,
    invariant: StatePredicate,
    *,
    initial: Optional[State] = None,
    extra_facts: Iterable[tuple[str, tuple]] = (),
    max_states: int = 5_000,
    max_depth: int = 50,
    query: str = "AG invariant",
) -> ModelCheckResult:
    """Does ``invariant`` hold in every reachable state (within the bounds)?

    A violation produces the counterexample trace the paper describes as the
    model checker's contribution to the proof process (Section 4.3).
    """

    start = initial if initial is not None else system.initial_state(extra_facts)
    hit, explored, depth, truncated = _explore(
        system,
        start,
        max_states=max_states,
        max_depth=max_depth,
        stop=lambda s: not invariant(s),
    )
    if hit is not None:
        state, path = hit
        return ModelCheckResult(query, False, explored, depth, truncated, path, state)
    return ModelCheckResult(query, True, explored, depth, truncated)


def check_eventually_expires(
    system: TransitionSystem,
    predicate: str,
    *,
    extra_facts: Iterable[tuple[str, tuple]] = (),
    max_ticks: int = 64,
) -> ModelCheckResult:
    """Along the pure-tick path, do all ``predicate`` facts eventually expire?

    This is the eventual-consistency sanity check for soft state: with no
    refresh activity, a soft-state table must drain.  (With refresh rules
    enabled the same query on the full system shows the table being
    sustained, which is the intended protocol behaviour.)
    """

    state = system.initial_state(extra_facts)
    trace: list[Transition] = []
    for tick_index in range(max_ticks):
        if not state.rows(predicate):
            return ModelCheckResult(
                f"F (empty {predicate})", True, tick_index + 1, tick_index, False, trace, state
            )
        tick = None
        for transition in system.successors(state):
            if transition.kind == "tick":
                tick = transition
                break
        if tick is None:
            break
        trace.append(tick)
        state = tick.target
    holds = not state.rows(predicate)
    return ModelCheckResult(
        f"F (empty {predicate})", holds, max_ticks, max_ticks, not holds, trace, state
    )
