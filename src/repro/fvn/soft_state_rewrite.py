"""The soft-state → hard-state rule rewrite (paper Section 4.2).

To reason about soft state with a classical (non-linear) logic, reference
[22] rewrites soft-state predicates into hard-state predicates carrying
explicit timestamp and lifetime attributes, and adds liveness conditions to
every rule reading them.  The paper calls the resulting encoding
"heavy-weight and cumbersome to prove" — this module implements the rewrite
and *measures* that blow-up, which is what experiment E7 reports, and it
motivates the transition-system view in :mod:`repro.fvn.linear`.

Rewrite, for each soft-state predicate ``p(A1..An)`` with lifetime ``L``:

* the predicate becomes ``p(A1..An, Tins, Ttl)``;
* every rule deriving ``p`` appends ``Tins = Tnow`` and ``Ttl = L`` where
  ``Tnow`` is the (max of the) timestamps of the soft-state body literals
  (or 0 for purely hard-state bodies);
* every rule reading ``p`` receives fresh timestamp variables and the
  liveness condition ``Tnow <= Tins + Ttl`` relating the reader's timestamp
  to the tuple's insertion time and lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.terms import Const, Func, Term, Var
from ..ndlog.ast import (
    Assignment,
    Condition,
    HeadLiteral,
    Literal,
    MaterializeDecl,
    Program,
    Rule,
)


@dataclass
class RewriteMetrics:
    """Size metrics of a program, used to quantify the encoding blow-up."""

    rules: int
    body_literals: int
    attributes: int
    conditions: int
    assignments: int

    @staticmethod
    def of(program: Program) -> "RewriteMetrics":
        rules = len(program.rules)
        body_literals = sum(len(r.body_literals) for r in program.rules)
        attributes = sum(r.head.arity for r in program.rules) + sum(
            lit.arity for r in program.rules for lit in r.body_literals
        )
        conditions = sum(len(r.conditions) for r in program.rules)
        assignments = sum(len(r.assignments) for r in program.rules)
        return RewriteMetrics(rules, body_literals, attributes, conditions, assignments)

    def blowup_over(self, other: "RewriteMetrics") -> dict[str, float]:
        """Relative growth of each metric versus ``other`` (the original)."""

        def ratio(a: int, b: int) -> float:
            return a / b if b else float("inf") if a else 1.0

        return {
            "rules": ratio(self.rules, other.rules),
            "body_literals": ratio(self.body_literals, other.body_literals),
            "attributes": ratio(self.attributes, other.attributes),
            "conditions": ratio(self.conditions, other.conditions),
            "assignments": ratio(self.assignments, other.assignments),
        }


@dataclass
class SoftStateRewrite:
    """The rewritten program plus before/after metrics."""

    original: Program
    rewritten: Program
    soft_predicates: tuple[str, ...]
    before: RewriteMetrics
    after: RewriteMetrics

    def blowup(self) -> dict[str, float]:
        return self.after.blowup_over(self.before)

    def summary(self) -> str:
        blow = self.blowup()
        return (
            f"soft-state rewrite of {self.original.name}: "
            f"attributes x{blow['attributes']:.2f}, conditions x{blow['conditions']:.2f}, "
            f"assignments x{blow['assignments']:.2f} over {len(self.soft_predicates)} soft predicates"
        )


def _is_soft(predicate: str, program: Program) -> bool:
    decl = program.materialized.get(predicate)
    return bool(decl and decl.is_soft_state)


def rewrite_soft_state(program: Program, *, timestamp_prefix: str = "T") -> SoftStateRewrite:
    """Apply the soft-state → hard-state rewrite to a program."""

    program.check()
    soft = tuple(sorted(p for p in program.predicates() if _is_soft(p, program)))
    if not soft:
        rewritten = Program(program.name + "_hard")
        for rule in program.rules:
            rewritten.add_rule(rule)
        for fact in program.facts:
            rewritten.add_fact(fact)
        metrics = RewriteMetrics.of(program)
        return SoftStateRewrite(program, rewritten, soft, metrics, metrics)

    rewritten = Program(program.name + "_hard")
    # Hard-state (rewritten) tables keep their keys but lose the lifetime —
    # expiry is now expressed by the liveness conditions, not by the store.
    for decl in program.materialized.values():
        rewritten.add_materialize(
            MaterializeDecl(
                predicate=decl.predicate,
                lifetime=float("inf"),
                max_size=decl.max_size,
                keys=decl.keys,
            )
        )

    for rule in program.rules:
        counter = 0
        new_body: list = []
        body_timestamps: list[Var] = []

        def fresh_pair() -> tuple[Var, Var]:
            nonlocal counter
            counter += 1
            return Var(f"{timestamp_prefix}ins{counter}"), Var(f"{timestamp_prefix}ttl{counter}")

        for item in rule.body:
            if isinstance(item, Literal) and not item.negated and item.predicate in soft:
                tins, tttl = fresh_pair()
                new_body.append(Literal(item.predicate, item.args + (tins, tttl), item.location, item.negated))
                body_timestamps.append(tins)
                # liveness: the fact must still be alive when used
                new_body.append(Condition("<=", Var(f"{timestamp_prefix}now"), Func("+", (tins, tttl))))
            elif isinstance(item, Literal) and item.negated and item.predicate in soft:
                tins, tttl = fresh_pair()
                new_body.append(Literal(item.predicate, item.args + (tins, tttl), item.location, item.negated))
            else:
                new_body.append(item)

        # The reader's "now" is the latest insertion time among its soft inputs.
        if body_timestamps:
            now_expr: Term = body_timestamps[0]
            for ts in body_timestamps[1:]:
                now_expr = Func("max", (now_expr, ts))
            new_body.insert(0, Assignment(Var(f"{timestamp_prefix}now"), now_expr))
        else:
            new_body.insert(0, Assignment(Var(f"{timestamp_prefix}now"), Const(0)))

        head = rule.head
        if head.predicate in soft:
            lifetime = program.lifetime_of(head.predicate)
            head_args = head.args + (
                Var(f"{timestamp_prefix}now"),
                Const(lifetime),
            )
            head = HeadLiteral(head.predicate, head_args, head.location)
        rewritten.add_rule(Rule(rule.name, head, tuple(new_body)))

    for fact in program.facts:
        if fact.predicate in soft:
            lifetime = program.lifetime_of(fact.predicate)
            rewritten.add_fact(
                type(fact)(fact.predicate, fact.values + (0, lifetime), fact.location)
            )
        else:
            rewritten.add_fact(fact)

    return SoftStateRewrite(
        original=program,
        rewritten=rewritten,
        soft_predicates=soft,
        before=RewriteMetrics.of(program),
        after=RewriteMetrics.of(rewritten),
    )
