"""Generating NDlog programs from verified component specifications (arc 3).

Paper Section 3.2.2 gives the translation: an atomic component

.. code-block:: none

    t(I,O): INDUCTIVE bool = CT(I,O)

becomes the NDlog rule

.. code-block:: none

    t_out(O) :- t_in(I), CT(I,O)

and a composite component's sub-components chain through the generated
``*_out`` relations (the Figure 3 example).  This module implements that
translation over :class:`~repro.fvn.components.Component` /
:class:`~repro.fvn.components.CompositeComponent`, including the optional
location-specifier annotation step the paper mentions ("additional predicate
schema information is required as input"), supplied as a mapping from
port attribute name to the attribute that should carry the ``@``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..logic.formulas import And, Atom, Comparison, Exists, Formula, Not, Truth
from ..logic.terms import Var
from ..ndlog.ast import (
    Assignment,
    BodyItem,
    Condition,
    HeadLiteral,
    Literal,
    NDlogError,
    Program,
    Rule,
)
from .components import Component, ComponentError, CompositeComponent


#: Suffixes used for the generated input/output relations.
IN_SUFFIX = "_in"
OUT_SUFFIX = "_out"


@dataclass
class SchemaAnnotation:
    """Location-specifier schema information for the generated program.

    ``locations`` maps a generated predicate name (``t_in``/``t_out``) to the
    0-based index of the attribute acting as the location specifier.  A
    ``default_attribute`` name can be given instead: any predicate whose
    schema contains an attribute of that name is located there.
    """

    locations: dict[str, int] = field(default_factory=dict)
    default_attribute: Optional[str] = None

    def location_for(self, predicate: str, attributes: Sequence[str]) -> Optional[int]:
        if predicate in self.locations:
            return self.locations[predicate]
        if self.default_attribute and self.default_attribute in attributes:
            return list(attributes).index(self.default_attribute)
        return None


def _constraint_to_body_items(formula: Formula) -> list[BodyItem]:
    """Flatten a component constraint into NDlog body items.

    Supported constraint forms: conjunctions of atoms (auxiliary relations),
    comparisons (equalities become assignments when one side is a bare
    variable), and negated atoms.  Anything else is rejected — the same
    syntactic restriction the paper's translation imposes.
    """

    items: list[BodyItem] = []
    stack: list[Formula] = [formula]
    while stack:
        f = stack.pop()
        if isinstance(f, Truth):
            continue
        if isinstance(f, And):
            stack.extend(reversed(f.parts))
            continue
        if isinstance(f, Exists):
            stack.append(f.body)
            continue
        if isinstance(f, Atom):
            items.append(Literal(f.predicate, tuple(f.args)))
            continue
        if isinstance(f, Not) and isinstance(f.body, Atom):
            items.append(Literal(f.body.predicate, tuple(f.body.args), negated=True))
            continue
        if isinstance(f, Comparison):
            if f.op == "=" and isinstance(f.left, Var):
                items.append(Assignment(f.left, f.right))
            elif f.op == "=" and isinstance(f.right, Var):
                items.append(Assignment(f.right, f.left))
            else:
                items.append(Condition(f.op, f.left, f.right))
            continue
        raise NDlogError(
            f"cannot translate constraint {f} to NDlog (only conjunctions of "
            "atoms, comparisons, and negated atoms are supported)"
        )
    # Keep source order (stack reversal above preserves it for conjunctions).
    return items


def component_to_rules(
    component: Component,
    *,
    schema: Optional[SchemaAnnotation] = None,
    input_predicates: Optional[Mapping[str, str]] = None,
    output_predicates: Optional[Mapping[str, str]] = None,
    rule_prefix: str = "",
) -> list[Rule]:
    """Translate one atomic component into NDlog rules.

    One rule is generated per output port (the paper's generalization to
    components connected to multiple outputs); all input ports appear as
    ``t_in`` predicates in every rule body.  ``input_predicates`` /
    ``output_predicates`` override the default ``<component>_<port><suffix>``
    naming so composites can chain sub-components directly.
    """

    schema = schema or SchemaAnnotation()
    input_predicates = dict(input_predicates or {})
    output_predicates = dict(output_predicates or {})
    rules: list[Rule] = []
    body_literals: list[BodyItem] = []
    for port in component.inputs:
        predicate = input_predicates.get(port.name, f"{component.name}{IN_SUFFIX}_{port.name}")
        location = schema.location_for(predicate, port.attributes)
        body_literals.append(Literal(predicate, port.variables(), location))
    constraint_items = _constraint_to_body_items(component.constraint_formula())
    for index, port in enumerate(component.outputs):
        predicate = output_predicates.get(port.name, f"{component.name}{OUT_SUFFIX}_{port.name}")
        location = schema.location_for(predicate, port.attributes)
        head = HeadLiteral(predicate, port.variables(), location)
        name = f"{rule_prefix}{component.name}_{port.name}" if len(component.outputs) > 1 else f"{rule_prefix}{component.name}"
        rules.append(Rule(name, head, tuple(body_literals + constraint_items)))
    return rules


def composite_to_program(
    composite: CompositeComponent,
    *,
    schema: Optional[SchemaAnnotation] = None,
    program_name: Optional[str] = None,
) -> Program:
    """Translate a composite component into an executable NDlog program.

    Internal wires chain through the producing component's ``*_out``
    relation: the consumer's body literal for a wired input port *is* the
    producer's output relation (exactly the Figure 3 translation, where
    ``t3_out(O3) :- t1_out(O1), t2_out(O2), C3``).  External inputs remain
    ``<composite>_in_<port>`` relations the environment populates.
    """

    schema = schema or SchemaAnnotation()
    program = Program(program_name or f"{composite.name}_ndlog")
    wire_by_dst = {(w.dst_component, w.dst_port): w for w in composite.wires}

    for component in composite.topological_order():
        input_predicates: dict[str, str] = {}
        for port in component.inputs:
            wire = wire_by_dst.get((component.name, port.name))
            if wire is not None:
                input_predicates[port.name] = f"{wire.src_component}{OUT_SUFFIX}_{wire.src_port}"
            else:
                input_predicates[port.name] = f"{composite.name}{IN_SUFFIX}_{port.name}"
        output_predicates = {
            port.name: f"{component.name}{OUT_SUFFIX}_{port.name}" for port in component.outputs
        }
        for rule in component_to_rules(
            component,
            schema=schema,
            input_predicates=input_predicates,
            output_predicates=output_predicates,
        ):
            program.add_rule(rule)
    return program


@dataclass
class TranslationEquivalence:
    """Outcome of differentially testing a composite against its NDlog program.

    Used by tests and by experiment F2/F3: feed the same external inputs to
    the component graph (direct ``run``) and to the generated NDlog program
    (via the centralized evaluator), and compare outputs.
    """

    matches: bool
    component_outputs: dict[str, tuple]
    ndlog_outputs: dict[str, set[tuple]]
    detail: str = ""


def check_translation_equivalence(
    composite: CompositeComponent,
    external_inputs: Mapping[str, tuple],
    *,
    schema: Optional[SchemaAnnotation] = None,
    functions: Optional[Mapping[str, object]] = None,
) -> TranslationEquivalence:
    """Differentially test the composite's direct execution against the
    evaluation of its generated NDlog program on the same inputs.

    ``functions`` supplies interpretations for any domain-specific functions
    the component constraints call (e.g. policy lookups).
    """

    from ..ndlog.functions import builtin_registry  # local import to avoid cycles
    from ..ndlog.seminaive import evaluate

    registry = builtin_registry(dict(functions) if functions else None)
    program = composite_to_program(composite, schema=schema)
    # Build the NDlog input facts from the external inputs.
    facts: list[tuple[str, tuple]] = []
    ext_in = composite.external_inputs()
    for key, value in external_inputs.items():
        if "." in key:
            comp_name, port_name = key.split(".", 1)
        else:
            matches = [(c, p) for c, p in ext_in if p.name == key]
            if len(matches) != 1:
                raise ComponentError(f"ambiguous or unknown external input {key!r}")
            comp_name, port_name = matches[0][0], matches[0][1].name
        facts.append((f"{composite.name}{IN_SUFFIX}_{port_name}", tuple(value)))
    # one-shot differential check over a handful of facts: rule-compilation
    # cost dominates evaluation, and the per-call registry (fresh policy
    # closures) defeats the codegen source cache — stop at the compiled-plan
    # tier, whose compilation is cheap
    db = evaluate(program, facts, registry=registry, codegen=False)

    component_outputs = composite.run(**{k: tuple(v) for k, v in external_inputs.items()})
    ndlog_outputs: dict[str, set[tuple]] = {}
    matches = True
    details: list[str] = []
    for out_key, value in component_outputs.items():
        comp_name, port_name = out_key.split(".", 1)
        predicate = f"{comp_name}{OUT_SUFFIX}_{port_name}"
        rows = set(db.rows(predicate))
        ndlog_outputs[out_key] = rows
        if tuple(value) not in rows:
            matches = False
            details.append(f"{out_key}: component produced {value!r}, NDlog produced {rows!r}")
    return TranslationEquivalence(
        matches=matches,
        component_outputs=component_outputs,
        ndlog_outputs=ndlog_outputs,
        detail="; ".join(details),
    )
