"""Component-based network models (paper Section 3.2).

A network protocol is decomposed into *components*, each a relation between
its input tuples and output tuples expressed by constraints — Griffin's view
of BGP as a series of route transformations (Figure 2), or the generic
compositional component ``tc`` of Figure 3.  In FVN these models are written
once and then

* formalized as logical specifications (inductive definitions) for
  verification, and
* translated into NDlog rules for execution
  (:mod:`repro.fvn.logic_to_ndlog`).

A component's constraint can be given two ways, which the two translations
consume respectively:

* ``constraints`` — declarative :class:`ComponentConstraint` records
  (equalities, comparisons, predicate memberships) over the named ports, or
* ``transform`` — a Python function from input values to output values,
  used when simulating the component graph directly and for differential
  testing of the generated NDlog program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ..logic.formulas import Atom, Formula, conj
from ..logic.inductive import Clause, InductiveDefinition
from ..logic.terms import Var
from ..logic.theory import Theory


class ComponentError(Exception):
    """Raised for malformed component models."""


@dataclass(frozen=True)
class Port:
    """A named port with a tuple of attribute names."""

    name: str
    attributes: tuple[str, ...]

    def variables(self, prefix: str = "") -> tuple[Var, ...]:
        return tuple(Var(prefix + a) for a in self.attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)


@dataclass(frozen=True)
class ComponentConstraint:
    """One declarative constraint ``CT(I, O)`` of a component.

    The formula is expressed over variables named after port attributes.
    """

    formula: Formula
    description: str = ""

    def __str__(self) -> str:
        return self.description or str(self.formula)


@dataclass
class Component:
    """An atomic component ``t(I, O): INDUCTIVE bool = CT(I, O)``."""

    name: str
    inputs: tuple[Port, ...]
    outputs: tuple[Port, ...]
    constraints: tuple[ComponentConstraint, ...] = ()
    transform: Optional[Callable[..., Mapping[str, tuple] | tuple | None]] = None
    doc: str = ""

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        self.outputs = tuple(self.outputs)
        self.constraints = tuple(self.constraints)
        seen: set[str] = set()
        for port in self.inputs + self.outputs:
            if port.name in seen:
                raise ComponentError(f"component {self.name}: duplicate port {port.name!r}")
            seen.add(port.name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.inputs)

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.outputs)

    def port(self, name: str) -> Port:
        for p in self.inputs + self.outputs:
            if p.name == name:
                return p
        raise ComponentError(f"component {self.name}: no port {name!r}")

    def all_variables(self) -> tuple[Var, ...]:
        out: list[Var] = []
        for port in self.inputs + self.outputs:
            for v in port.variables():
                if v not in out:
                    out.append(v)
        return tuple(out)

    def constraint_formula(self) -> Formula:
        return conj(*(c.formula for c in self.constraints))

    # ------------------------------------------------------------------
    # Logical specification (PVS-style inductive definition)
    # ------------------------------------------------------------------
    def inductive_definition(self) -> InductiveDefinition:
        """``t(I, O): INDUCTIVE bool = CT(I, O)`` as an inductive definition.

        Parameters are the concatenated input then output attributes;
        variables mentioned only in constraints become clause existentials.
        """

        params = self.all_variables()
        body = self.constraint_formula()
        extra = tuple(v for v in sorted(body.free_vars(), key=lambda x: x.name) if v not in params)
        return InductiveDefinition(
            predicate=self.name,
            params=params,
            clauses=(Clause(extra, body),),
            doc=self.doc,
        )

    # ------------------------------------------------------------------
    # Direct execution
    # ------------------------------------------------------------------
    def run(self, **port_values: tuple) -> dict[str, tuple]:
        """Run the component's ``transform`` on concrete input tuples.

        ``port_values`` maps input port names to value tuples; the result
        maps output port names to value tuples.  Components without a
        ``transform`` cannot be run directly.
        """

        if self.transform is None:
            raise ComponentError(f"component {self.name} has no executable transform")
        missing = [p for p in self.input_names if p not in port_values]
        if missing:
            raise ComponentError(f"component {self.name}: missing inputs {missing}")
        result = self.transform(**{p: port_values[p] for p in self.input_names})
        if result is None:
            return {}
        if isinstance(result, Mapping):
            return dict(result)
        if len(self.outputs) != 1:
            raise ComponentError(
                f"component {self.name}: transform returned a bare tuple but the "
                f"component has {len(self.outputs)} outputs"
            )
        return {self.outputs[0].name: tuple(result)}


@dataclass(frozen=True)
class Wire:
    """A connection from one component's output port to another's input port."""

    src_component: str
    src_port: str
    dst_component: str
    dst_port: str


@dataclass
class CompositeComponent:
    """A component assembled from sub-components (Figure 3's ``tc``).

    External inputs/outputs are ports of sub-components that are not wired
    internally; they become the composite's own ports.
    """

    name: str
    components: dict[str, Component] = field(default_factory=dict)
    wires: list[Wire] = field(default_factory=list)
    doc: str = ""

    def add(self, component: Component) -> Component:
        if component.name in self.components:
            raise ComponentError(f"duplicate component {component.name!r}")
        self.components[component.name] = component
        return component

    def connect(self, src: str, src_port: str, dst: str, dst_port: str) -> Wire:
        for name, port_name, direction in ((src, src_port, "outputs"), (dst, dst_port, "inputs")):
            component = self.components.get(name)
            if component is None:
                raise ComponentError(f"unknown component {name!r}")
            names = component.output_names if direction == "outputs" else component.input_names
            if port_name not in names:
                raise ComponentError(
                    f"component {name!r} has no {direction[:-1]} port {port_name!r}"
                )
        wire = Wire(src, src_port, dst, dst_port)
        self.wires.append(wire)
        return wire

    # ------------------------------------------------------------------
    # External interface
    # ------------------------------------------------------------------
    def _wired_inputs(self) -> set[tuple[str, str]]:
        return {(w.dst_component, w.dst_port) for w in self.wires}

    def _wired_outputs(self) -> set[tuple[str, str]]:
        return {(w.src_component, w.src_port) for w in self.wires}

    def external_inputs(self) -> list[tuple[str, Port]]:
        wired = self._wired_inputs()
        out = []
        for name, component in self.components.items():
            for port in component.inputs:
                if (name, port.name) not in wired:
                    out.append((name, port))
        return out

    def external_outputs(self) -> list[tuple[str, Port]]:
        wired = self._wired_outputs()
        out = []
        for name, component in self.components.items():
            for port in component.outputs:
                if (name, port.name) not in wired:
                    out.append((name, port))
        return out

    def topological_order(self) -> list[Component]:
        """Sub-components ordered so producers precede consumers."""

        depends: dict[str, set[str]] = {name: set() for name in self.components}
        for wire in self.wires:
            depends[wire.dst_component].add(wire.src_component)
        ordered: list[str] = []
        remaining = dict(depends)
        while remaining:
            ready = [n for n, deps in remaining.items() if deps <= set(ordered)]
            if not ready:
                raise ComponentError(f"composite {self.name}: cyclic wiring")
            for n in sorted(ready):
                ordered.append(n)
                del remaining[n]
        return [self.components[n] for n in ordered]

    # ------------------------------------------------------------------
    # Logical specification
    # ------------------------------------------------------------------
    def theory(self) -> Theory:
        """A theory holding one inductive definition per sub-component plus
        the composite's own definition (existentially hiding internal wires)."""

        thy = Theory(self.name, doc=self.doc)
        for component in self.components.values():
            thy.define(component.inductive_definition())
        thy.define(self.inductive_definition())
        return thy

    def inductive_definition(self) -> InductiveDefinition:
        """The composite as ``tc(ext_inputs, ext_outputs) = EXISTS internals: ...``."""

        # Each internal wire's attributes get one shared variable set named
        # after the producing component/port.
        rename: dict[tuple[str, str], str] = {}
        for wire in self.wires:
            shared = f"{wire.src_component}_{wire.src_port}"
            rename[(wire.src_component, wire.src_port)] = shared
            rename[(wire.dst_component, wire.dst_port)] = shared

        def port_vars(component: Component, port: Port) -> tuple[Var, ...]:
            prefix = rename.get((component.name, port.name), f"{component.name}_{port.name}")
            return tuple(Var(f"{prefix}_{a}") for a in port.attributes)

        atoms: list[Formula] = []
        for component in self.components.values():
            args: list[Var] = []
            for port in component.inputs + component.outputs:
                args.extend(port_vars(component, port))
            atoms.append(Atom(component.name, tuple(args)))
        body = conj(*atoms)

        external_vars: list[Var] = []
        for name, port in self.external_inputs() + self.external_outputs():
            external_vars.extend(port_vars(self.components[name], port))
        internal_vars = tuple(
            v for v in sorted(body.free_vars(), key=lambda x: x.name) if v not in external_vars
        )
        return InductiveDefinition(
            predicate=self.name,
            params=tuple(external_vars),
            clauses=(Clause(internal_vars, body),),
            doc=self.doc,
        )

    # ------------------------------------------------------------------
    # Direct execution
    # ------------------------------------------------------------------
    def run(self, **external_inputs: tuple) -> dict[str, tuple]:
        """Execute the component graph on concrete external input tuples.

        ``external_inputs`` maps ``"component.port"`` (or bare port name when
        unambiguous) to tuples.  Returns the external outputs keyed the same
        way.
        """

        values: dict[tuple[str, str], tuple] = {}
        ext_in = self.external_inputs()
        for key, value in external_inputs.items():
            if "." in key:
                comp_name, port_name = key.split(".", 1)
            else:
                matches = [(c, p) for c, p in ext_in if p.name == key]
                if len(matches) != 1:
                    raise ComponentError(f"ambiguous or unknown external input {key!r}")
                comp_name, port_name = matches[0][0], matches[0][1].name
            values[(comp_name, port_name)] = tuple(value)

        wire_by_dst = {(w.dst_component, w.dst_port): w for w in self.wires}
        for component in self.topological_order():
            kwargs: dict[str, tuple] = {}
            starved = False
            for port in component.inputs:
                key = (component.name, port.name)
                if key in values:
                    kwargs[port.name] = values[key]
                elif key in wire_by_dst:
                    wire = wire_by_dst[key]
                    src_key = (wire.src_component, wire.src_port)
                    if src_key not in values:
                        # the upstream component filtered the tuple out (e.g. an
                        # export policy denied the route): nothing flows further
                        starved = True
                        break
                    kwargs[port.name] = values[src_key]
                else:
                    raise ComponentError(
                        f"component {component.name}: unbound input port {port.name!r}"
                    )
            if starved:
                continue
            outputs = component.run(**kwargs)
            for port_name, value in outputs.items():
                values[(component.name, port_name)] = tuple(value)

        result: dict[str, tuple] = {}
        for comp_name, port in self.external_outputs():
            key = (comp_name, port.name)
            if key in values:
                result[f"{comp_name}.{port.name}"] = values[key]
        return result
