"""Campaign reporting: summary tables and artifact diffing.

``fvn-campaign report`` renders the aggregated summary of a finished (or
partially finished) campaign directory; ``fvn-campaign diff`` compares the
deterministic per-run results of two campaign directories — the check behind
the reproducibility guarantee that re-running a spec is byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..obs.metrics import MetricsRegistry
from .records import (
    LEDGER_NAME,
    METRICS_NAME,
    RESULTS_NAME,
    SUMMARY_NAME,
    RunRecord,
    read_ledger,
    read_results,
    summarize,
)


def load_records(out_dir: str | Path) -> list[RunRecord]:
    """Records of a campaign directory (results file, else the ledger)."""

    out_dir = Path(out_dir)
    results = out_dir / RESULTS_NAME
    if results.exists():
        return read_results(results)
    ledger = out_dir / LEDGER_NAME
    if ledger.exists():
        return sorted(read_ledger(ledger).values(), key=lambda r: r.index)
    raise FileNotFoundError(
        f"no {RESULTS_NAME} or {LEDGER_NAME} in {out_dir} — not a campaign directory"
    )


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows), 1)
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(headers[i]).ljust(widths[i]) for i in range(len(headers))),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_summary(out_dir: str | Path) -> str:
    """A human-readable campaign summary table."""

    out_dir = Path(out_dir)
    records = load_records(out_dir)
    summary_path = out_dir / SUMMARY_NAME
    if summary_path.exists():
        summary = json.loads(summary_path.read_text())
    else:
        summary = summarize(records)
    header = (
        f"campaign {summary.get('campaign', out_dir.name)}: "
        f"{summary['runs']} runs, {summary['quiescent']} quiescent, "
        f"{summary['violations']} violations "
        f"({summary['active_violations']} persisting at end)"
    )
    if "wall_time" in summary:
        header += (
            f", {summary['wall_time']:.1f}s wall "
            f"({summary.get('workers', 1)} workers, "
            f"{summary.get('executed', summary['runs'])} executed"
            f" / {summary.get('resumed', 0)} resumed)"
        )
    rows = [
        [
            cell,
            stats["runs"],
            stats["quiescent"],
            f"{stats['mean_convergence_time']:.3f}",
            f"{stats['mean_messages']:.0f}",
            # percentile columns appeared with the obs work; summaries
            # written by older campaigns simply show 0
            f"{stats.get('p95_messages', 0):.0f}",
            f"{stats.get('p95_wall_time', 0):.3f}",
            stats["violations"],
            stats["active_violations"],
            stats["stale_routes"],
        ]
        for cell, stats in summary["cells"].items()
    ]
    table = _table(
        [
            "cell", "runs", "quiesc", "conv(s)", "msgs", "p95msgs",
            "p95wall(s)", "viol", "active", "stale",
        ],
        rows,
    )
    return header + "\n\n" + table


def format_metrics(out_dir: str | Path) -> str:
    """The campaign's merged obs metrics as tables (docs/OBSERVABILITY.md).

    Prefers the ``metrics.json`` an obs-enabled campaign writes next to its
    summary; otherwise merges the per-run obs blocks still in the ledger,
    so a killed campaign's partial metrics are reportable too.
    """

    out_dir = Path(out_dir)
    metrics_path = out_dir / METRICS_NAME
    if metrics_path.exists():
        payload = json.loads(metrics_path.read_text())
    else:
        ledger = out_dir / LEDGER_NAME
        if not ledger.exists():
            raise FileNotFoundError(
                f"no {METRICS_NAME} or {LEDGER_NAME} in {out_dir} — "
                "not an obs-enabled campaign directory"
            )
        registry = MetricsRegistry()
        covered = total = 0
        for record in read_ledger(ledger).values():
            total += 1
            if record.obs and record.obs.get("metrics"):
                covered += 1
                registry.merge(record.obs["metrics"])
        payload = {
            "runs_covered": covered,
            "runs_total": total,
            "metrics": registry.snapshot(),
        }
    snapshot = payload.get("metrics", {})
    header = (
        f"metrics: {payload.get('runs_covered', 0)}/{payload.get('runs_total', 0)} "
        "runs covered"
    )
    counter_rows = [
        [name, value] for name, value in sorted(snapshot.get("counters", {}).items())
    ]
    hist_rows = [
        [
            name,
            h["count"],
            f"{h['sum']:.6g}",
            f"{h['p50']:.6g}",
            f"{h['p95']:.6g}",
            f"{h['max']:.6g}",
        ]
        for name, h in sorted(snapshot.get("histograms", {}).items())
    ]
    parts = [header]
    if counter_rows:
        parts.append(_table(["counter", "total"], counter_rows))
    if hist_rows:
        parts.append(_table(["histogram", "count", "sum", "p50", "p95", "max"], hist_rows))
    if not counter_rows and not hist_rows:
        parts.append("no metrics recorded (campaign ran without obs)")
    return "\n\n".join(parts)


def diff_campaigns(dir_a: str | Path, dir_b: str | Path) -> list[str]:
    """Differences between two campaigns' deterministic results.

    Returns an empty list when the campaigns are identical run-for-run.
    """

    a_records = {r.run_id: r for r in load_records(dir_a)}
    b_records = {r.run_id: r for r in load_records(dir_b)}
    differences: list[str] = []
    for run_id in sorted(set(a_records) - set(b_records)):
        differences.append(f"{run_id}: only in {dir_a}")
    for run_id in sorted(set(b_records) - set(a_records)):
        differences.append(f"{run_id}: only in {dir_b}")
    for run_id in sorted(set(a_records) & set(b_records)):
        a, b = a_records[run_id].deterministic_dict(), b_records[run_id].deterministic_dict()
        if a == b:
            continue
        fields = [key for key in a if a.get(key) != b.get(key)]
        for key in fields:
            differences.append(f"{run_id}: {key}: {a.get(key)!r} != {b.get(key)!r}")
    return differences
