"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a *grid* of experiment scenarios — graph
family × node count × AS policy × churn schedule × channel loss × engine
configuration × seed — plus the shared run parameters (simulation-time and
event budgets, soft-state lifetimes, monitors).  :meth:`CampaignSpec.expand`
turns the grid into a deterministic, ordered list of
:class:`RunDescriptor` s: plain-data, picklable, JSON-round-trippable
descriptions from which a worker process can materialize and execute one run
with no other context.  The same spec always expands to the same descriptors
(and, through the seeded generators and engines, to the same per-run
results), which is what makes campaign artifacts diffable and campaigns
resumable.

Specs are written in TOML (stdlib ``tomllib``) or JSON::

    name = "smoke"
    families = ["tree"]
    sizes = [16]
    policies = ["shortest_path"]
    seeds = [0, 1, 2, 3]
    churn_events = [0]
    loss = [0.0]
    until = 20.0

List-valued fields are grid *axes*; scalar fields apply to every run.  The
``policies`` axis accepts policy kinds from
:data:`repro.scenarios.policies.POLICY_KINDS` plus ``"none"`` (the plain
path-vector program with no policy layer).  The ``engine`` axis is a list of
:class:`~repro.dn.engine.EngineConfig` override tables (default: one empty
override = engine defaults).
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Mapping, Optional, Sequence

from ..dn.engine import EngineConfig
from ..scenarios.generator import SCENARIO_FAMILIES
from ..scenarios.policies import POLICY_KINDS
from ..fvn.monitors import MONITOR_KINDS

#: ``policies`` entry meaning "no policy layer, plain path-vector program"
NO_POLICY = "none"

_ENGINE_FIELDS = {f.name for f in fields(EngineConfig)}


@dataclass(frozen=True)
class RunDescriptor:
    """Everything needed to execute one seeded run, as plain data."""

    index: int
    run_id: str
    family: str
    size: int
    seed: int
    policy: Optional[str]  # None = plain path-vector
    churn_events: int
    churn_start: float
    churn_spacing: float
    churn_restore_delay: Optional[float]
    loss: float
    engine_index: int
    engine: tuple[tuple[str, object], ...]
    until: float
    max_events: int
    soft_state: tuple[tuple[str, float], ...]
    refresh_interval: Optional[float]
    monitors: tuple[str, ...]
    record_stale_routes: bool

    def to_dict(self) -> dict:
        out = asdict(self)
        out["engine"] = dict(self.engine)
        out["soft_state"] = dict(self.soft_state)
        out["monitors"] = list(self.monitors)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunDescriptor":
        data = dict(data)
        data["engine"] = tuple(sorted(dict(data.get("engine", {})).items()))
        data["soft_state"] = tuple(sorted(dict(data.get("soft_state", {})).items()))
        data["monitors"] = tuple(data.get("monitors", ()))
        return cls(**data)

    def engine_config(self) -> EngineConfig:
        """The run's :class:`EngineConfig` (seeded, budgeted, overridden)."""

        config = EngineConfig(
            seed=self.seed,
            max_events=self.max_events,
            refresh_interval=self.refresh_interval,
        )
        for name, value in self.engine:
            setattr(config, name, value)
        return config


class SpecError(ValueError):
    """A campaign spec failed validation."""


@dataclass
class CampaignSpec:
    """A declarative grid of seeded experiment runs."""

    name: str
    # -- grid axes ---------------------------------------------------------
    families: tuple[str, ...] = ("tree",)
    sizes: tuple[int, ...] = (50,)
    policies: tuple[Optional[str], ...] = (NO_POLICY,)
    seeds: tuple[int, ...] = (0,)
    churn_events: tuple[int, ...] = (0,)
    loss: tuple[float, ...] = (0.0,)
    engine: tuple[dict, ...] = field(default_factory=lambda: ({},))
    #: shard-count axis: each value is merged into every engine override as
    #: ``shards=N`` (``shards = [1, 4]`` sweeps single-process vs 4-way
    #: sharded).  The default ``(1,)`` adds nothing, so specs written
    #: before sharding keep their exact run ids and descriptor bytes.
    shards: tuple[int, ...] = (1,)
    # -- shared run parameters --------------------------------------------
    churn_start: float = 1.0
    churn_spacing: float = 0.5
    churn_restore_delay: Optional[float] = 1.0
    until: float = 30.0
    max_events: int = 200_000
    #: predicate → lifetime override applied to the program's materialize
    #: declarations (soft-state dimension of the campaign)
    soft_state: dict = field(default_factory=dict)
    refresh_interval: Optional[float] = None
    monitors: tuple[str, ...] = MONITOR_KINDS
    record_stale_routes: bool = True
    #: attempt static proofs of monitor properties before running (see
    #: ``docs/ANALYSIS.md``): monitors whose properties are proved — and
    #: whose policy algebra discharges its obligations — are skipped at
    #: runtime and recorded as clean, with proof provenance in the ledger
    static_proofs: bool = False
    #: collect per-run observability blocks (metrics + spans, see
    #: ``docs/OBSERVABILITY.md``) into the ledger and a campaign
    #: ``metrics.json``.  Ledger-only: ``results.jsonl`` — and hence every
    #: fingerprint and diff — stays byte-identical to an ``obs = false``
    #: campaign.  A shared parameter, not a grid axis, so run ids and
    #: descriptors are unchanged.
    obs: bool = False

    def __post_init__(self) -> None:
        self.families = tuple(self.families)
        self.sizes = tuple(int(s) for s in self.sizes)
        self.policies = tuple(
            None if p in (None, NO_POLICY) else p for p in self.policies
        )
        self.seeds = tuple(int(s) for s in self.seeds)
        self.churn_events = tuple(int(c) for c in self.churn_events)
        self.loss = tuple(float(value) for value in self.loss)
        self.engine = tuple(dict(entry) for entry in self.engine) or ({},)
        self.shards = tuple(int(s) for s in self.shards) or (1,)
        self.soft_state = {str(k): float(v) for k, v in dict(self.soft_state).items()}
        self.monitors = tuple(self.monitors)
        self.static_proofs = bool(self.static_proofs)
        self.obs = bool(self.obs)
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        for family in self.families:
            if family not in SCENARIO_FAMILIES:
                raise SpecError(
                    f"unknown scenario family {family!r}; "
                    f"expected one of {sorted(SCENARIO_FAMILIES)}"
                )
        for policy in self.policies:
            if policy is not None and policy not in POLICY_KINDS:
                raise SpecError(
                    f"unknown policy {policy!r}; expected one of "
                    f"{(NO_POLICY,) + POLICY_KINDS}"
                )
        for kind in self.monitors:
            if kind not in MONITOR_KINDS:
                raise SpecError(
                    f"unknown monitor {kind!r}; expected one of {MONITOR_KINDS}"
                )
        for entry in self.engine:
            unknown = set(entry) - _ENGINE_FIELDS
            if unknown:
                raise SpecError(
                    f"unknown EngineConfig fields {sorted(unknown)}; "
                    f"expected among {sorted(_ENGINE_FIELDS)}"
                )
        if not (self.families and self.sizes and self.policies and self.seeds):
            raise SpecError("families, sizes, policies, and seeds must be non-empty")
        for shard_count in self.shards:
            if shard_count < 1:
                raise SpecError("shards values must be >= 1")
        for size in self.sizes:
            if size < 1:
                raise SpecError("sizes must be positive")
        for value in self.loss:
            if not 0.0 <= value < 1.0:
                raise SpecError("loss values must be probabilities in [0, 1)")

    # ------------------------------------------------------------------
    @property
    def run_count(self) -> int:
        return (
            len(self.families)
            * len(self.sizes)
            * len(self.policies)
            * len(self.churn_events)
            * len(self.loss)
            * len(self.engine)
            * len(self.shards)
            * len(self.seeds)
        )

    def expand(self) -> list[RunDescriptor]:
        """The spec's deterministic run grid, in stable order.

        Ordering (outermost → innermost): family, size, policy, churn,
        loss, engine entry, seed — so seeds of one cell are adjacent, which
        keeps process-pool chunks cache-friendly (same program/topology
        family per chunk).
        """

        descriptors: list[RunDescriptor] = []
        soft_state = tuple(sorted(self.soft_state.items()))
        # the default (1,) axis leaves descriptors (and so run ids, ledgers,
        # and resume matching) byte-identical to pre-sharding campaigns; an
        # explicit axis merges ``shards=N`` into each engine override and
        # tags the run id
        legacy_shards = self.shards == (1,)
        index = 0
        for family in self.families:
            for size in self.sizes:
                for policy in self.policies:
                    for churn in self.churn_events:
                        for loss in self.loss:
                            for engine_index, overrides in enumerate(self.engine):
                              for shard_count in self.shards:
                                merged = dict(overrides)
                                shard_tag = ""
                                if not legacy_shards:
                                    merged["shards"] = shard_count
                                    shard_tag = f"-sh{shard_count}"
                                engine = tuple(sorted(merged.items()))
                                for seed in self.seeds:
                                    run_id = (
                                        f"{index:04d}-{family}-{size}"
                                        f"-{policy or NO_POLICY}-c{churn}-l{loss:g}"
                                        f"-e{engine_index}{shard_tag}-s{seed}"
                                    )
                                    descriptors.append(
                                        RunDescriptor(
                                            index=index,
                                            run_id=run_id,
                                            family=family,
                                            size=size,
                                            seed=seed,
                                            policy=policy,
                                            churn_events=churn,
                                            churn_start=self.churn_start,
                                            churn_spacing=self.churn_spacing,
                                            churn_restore_delay=self.churn_restore_delay,
                                            loss=loss,
                                            engine_index=engine_index,
                                            engine=engine,
                                            until=self.until,
                                            max_events=self.max_events,
                                            soft_state=soft_state,
                                            refresh_interval=self.refresh_interval,
                                            monitors=self.monitors,
                                            record_stale_routes=self.record_stale_routes,
                                        )
                                    )
                                    index += 1
        return descriptors

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = asdict(self)
        out["policies"] = [p or NO_POLICY for p in self.policies]
        out["engine"] = [dict(entry) for entry in self.engine]
        for key in ("families", "sizes", "seeds", "churn_events", "loss", "monitors", "shards"):
            out[key] = list(out[key])
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown spec fields {sorted(unknown)}; expected among {sorted(known)}"
            )
        if "name" not in data:
            raise SpecError("campaign spec needs a name")
        return cls(**dict(data))


def _scalars_to_axes(data: dict) -> dict:
    """Allow scalar values for axis fields (a single-point axis)."""

    for key in ("families", "sizes", "policies", "seeds", "churn_events", "loss", "shards"):
        if key in data and not isinstance(data[key], (list, tuple)):
            data[key] = [data[key]]
    if "engine" in data and isinstance(data["engine"], Mapping):
        data["engine"] = [data["engine"]]
    return data


def load_spec(path: str | Path) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""

    path = Path(path)
    if not path.exists():
        raise SpecError(f"spec file not found: {path}")
    try:
        if path.suffix == ".toml":
            data = tomllib.loads(path.read_text())
        elif path.suffix == ".json":
            data = json.loads(path.read_text())
        else:
            raise SpecError(
                f"unsupported spec format {path.suffix!r} (use .toml or .json)"
            )
    except (tomllib.TOMLDecodeError, json.JSONDecodeError) as exc:
        raise SpecError(f"malformed spec {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise SpecError("campaign spec must be a table/object")
    data.setdefault("name", path.stem)
    try:
        return CampaignSpec.from_dict(_scalars_to_axes(data))
    except SpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecError(f"invalid spec {path}: {exc}") from exc


def spec_from_mapping(data: Mapping) -> CampaignSpec:
    """Build a spec from an in-memory mapping (benchmarks, tests)."""

    return CampaignSpec.from_dict(_scalars_to_axes(dict(data)))


def descriptor_ids(descriptors: Sequence[RunDescriptor]) -> list[str]:
    return [d.run_id for d in descriptors]
