"""The ``fvn-campaign`` command-line interface.

::

    fvn-campaign run examples/campaign_smoke.toml --workers 4
    fvn-campaign report campaigns/campaign-smoke
    fvn-campaign diff campaigns/a campaigns/b

(equivalently ``python -m repro.harness ...``).  ``run`` executes a campaign
spec — resuming a previous partial campaign of the same output directory
unless ``--fresh`` — then prints the summary table.  ``report`` re-renders
the table of an existing campaign directory.  ``diff`` compares the
deterministic per-run results of two campaign directories and exits
non-zero when they differ.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .records import RunRecord
from .report import diff_campaigns, format_metrics, format_summary
from .runner import run_campaign
from .spec import SpecError, load_spec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fvn-campaign",
        description=(
            "Parallel experiment-campaign orchestrator for the FVN "
            "reproduction: sweep scenario grids over the distributed NDlog "
            "engine with runtime invariant monitors attached."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="execute a campaign spec (.toml or .json)"
    )
    run_parser.add_argument("spec", help="path to the campaign spec file")
    run_parser.add_argument(
        "--out",
        default=None,
        help="output directory (default: campaigns/<spec name>)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default: 1)"
    )
    run_parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard previous artifacts instead of resuming",
    )
    run_parser.add_argument(
        "--fail-on-violations",
        action="store_true",
        help="exit 2 if any run recorded any invariant violation",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    run_parser.add_argument(
        "--obs",
        action="store_true",
        help="collect per-run metrics and spans into the ledger and a merged "
        "metrics.json (results.jsonl stays byte-identical; docs/OBSERVABILITY.md)",
    )
    run_parser.add_argument(
        "--trace-out",
        default=None,
        help="write a Chrome trace-event JSON of the campaign here (implies --obs)",
    )

    report_parser = sub.add_parser("report", help="summarize a campaign directory")
    report_parser.add_argument("out_dir", help="campaign output directory")
    report_parser.add_argument(
        "--metrics",
        action="store_true",
        help="show the merged obs metrics instead of the summary table",
    )

    diff_parser = sub.add_parser(
        "diff", help="compare the deterministic results of two campaigns"
    )
    diff_parser.add_argument("a", help="first campaign directory")
    diff_parser.add_argument("b", help="second campaign directory")
    return parser


def _progress(record: RunRecord, completed: int, total: int) -> None:
    status = "quiescent" if record.quiescent else "budget"
    violations = record.violation_count
    print(
        f"[{completed}/{total}] {record.run_id}: {status}, "
        f"{record.messages} msgs, conv={record.convergence_time:.3f}s"
        + (f", {violations} violations" if violations else ""),
        flush=True,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out_dir = Path(args.out) if args.out else Path("campaigns") / spec.name
    if args.obs:
        spec.obs = True
    result = run_campaign(
        spec,
        out_dir,
        workers=args.workers,
        resume=not args.fresh,
        progress=None if args.quiet else _progress,
        trace_out=args.trace_out,
    )
    print()
    print(format_summary(out_dir))
    print(f"\nartifacts: {out_dir}/{{ledger,results}}.jsonl, {out_dir}/summary.json")
    if args.fail_on_violations and any(r.violation_count for r in result.records):
        offenders = [r.run_id for r in result.records if r.violation_count]
        print(
            f"error: invariant violations in {len(offenders)} run(s): "
            + ", ".join(offenders[:5])
            + ("…" if len(offenders) > 5 else ""),
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        if args.metrics:
            print(format_metrics(args.out_dir))
        else:
            print(format_summary(args.out_dir))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        differences = diff_campaigns(args.a, args.b)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not differences:
        print(f"campaigns identical: {args.a} == {args.b}")
        return 0
    for line in differences[:50]:
        print(line)
    if len(differences) > 50:
        print(f"... and {len(differences) - 50} more differences")
    print(f"\ncampaigns differ: {len(differences)} difference(s)")
    return 1


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        return _cmd_report(args)
    return _cmd_diff(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
