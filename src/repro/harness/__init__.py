"""Parallel experiment-campaign orchestration with runtime monitors.

The paper's pitch is that declarative protocols are *verified and executed*.
This package operationalizes the "executed, at scale" half: declarative
campaign specs (:mod:`repro.harness.spec`) expand a scenario grid — graph
family × size × policy × churn × loss × engine configuration × seed — into
deterministic seeded run descriptors, a resumable process-parallel runner
(:mod:`repro.harness.runner`) executes them on the distributed NDlog engine
with FVN runtime invariant monitors (:mod:`repro.fvn.monitors`) attached,
and per-run records stream to JSONL artifacts
(:mod:`repro.harness.records`) that :mod:`repro.harness.report` summarizes
and diffs.  The CLI front end is ``fvn-campaign`` /
``python -m repro.harness`` (:mod:`repro.harness.cli`).
"""

from .records import RunRecord, read_ledger, read_results, summarize
from .report import diff_campaigns, format_summary, load_records
from .runner import CampaignResult, build_program, execute_run, run_campaign
from .spec import (
    NO_POLICY,
    CampaignSpec,
    RunDescriptor,
    SpecError,
    load_spec,
    spec_from_mapping,
)

__all__ = [
    "NO_POLICY",
    "CampaignResult",
    "CampaignSpec",
    "RunDescriptor",
    "RunRecord",
    "SpecError",
    "build_program",
    "diff_campaigns",
    "execute_run",
    "format_summary",
    "load_records",
    "load_spec",
    "read_ledger",
    "read_results",
    "run_campaign",
    "spec_from_mapping",
    "summarize",
]
