"""Process-parallel, resumable campaign execution.

:func:`execute_run` is the self-contained worker: it materializes one
:class:`~repro.harness.spec.RunDescriptor` through :mod:`repro.scenarios`,
executes it on :class:`~repro.dn.engine.DistributedEngine` with the
requested runtime invariant monitors attached, and returns a
:class:`~repro.harness.records.RunRecord` as plain data.  Because the
descriptor carries every seed, a run's result is a pure function of its
descriptor — the same whether it executes inline, in a worker process, or
in a resumed campaign.

:func:`run_campaign` drives a descriptor list through a
``ProcessPoolExecutor`` (chunked, results streamed back in descriptor
order), appending each completed record to the campaign's ledger as it
lands.  A killed campaign therefore restarts exactly where it stopped:
resume re-reads the ledger, skips completed runs, and executes the rest.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from ..bgp.generator import policy_path_vector_program
from ..dn.engine import DistributedEngine, EngineConfig, create_engine
from ..fvn.monitors import (
    MonitorSchema,
    build_monitor,
    clean_report,
    schema_for_program,
)
from ..ndlog.ast import MaterializeDecl, Program
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..protocols.pathvector import path_vector_program
from ..scenarios.generator import Scenario, generate_scenario
from .records import (
    LEDGER_NAME,
    METRICS_NAME,
    RESULTS_NAME,
    SPEC_NAME,
    SUMMARY_NAME,
    RunRecord,
    append_ledger,
    read_ledger,
    summarize,
    write_results,
)
from .spec import CampaignSpec, RunDescriptor


def build_program(descriptor: RunDescriptor) -> Program:
    """The run's NDlog program: plain path-vector, or the generated policy
    path-vector when the descriptor carries a policy kind, with the
    descriptor's soft-state lifetime overrides applied."""

    if descriptor.policy is None:
        program = path_vector_program()
    else:
        program = policy_path_vector_program()
    for predicate, lifetime in descriptor.soft_state:
        decl = program.materialized.get(predicate)
        if decl is None:
            raise ValueError(
                f"soft_state override for {predicate!r}: no such materialized "
                f"table in program {program.name!r}"
            )
        program.materialized[predicate] = MaterializeDecl(
            predicate, lifetime, decl.max_size, decl.keys
        )
    return program


def _materialize(descriptor: RunDescriptor) -> Scenario:
    return generate_scenario(
        descriptor.family,
        size=descriptor.size,
        seed=descriptor.seed,
        policy=descriptor.policy,
        churn_events=descriptor.churn_events,
        churn_start=descriptor.churn_start,
        churn_spacing=descriptor.churn_spacing,
        churn_restore_delay=descriptor.churn_restore_delay,
        loss=descriptor.loss,
    )


def _route_projection(engine: DistributedEngine, schema: MonitorSchema) -> set[tuple]:
    """(source, destination, value) of every selected best route — path
    choice dropped so equal-cost ties don't read as staleness."""

    return {
        tuple(row[p] for p in schema.group_positions) + (row[schema.best_value_position],)
        for row in engine.rows(schema.best_predicate)
    }


def _stale_routes(
    engine: DistributedEngine,
    descriptor: RunDescriptor,
    scenario: Scenario,
    schema: MonitorSchema,
) -> tuple[int, int]:
    """Selected routes diverging from a fresh reliable run on the final
    topology: (stale = held but wrong, missing = absent but derivable)."""

    for link in scenario.topology.links():
        link.loss = 0.0  # the reference fixpoint is loss-free
    fresh = DistributedEngine(
        build_program(descriptor),
        scenario.topology,
        config=EngineConfig(seed=descriptor.seed, max_events=descriptor.max_events),
    )
    fresh.run(until=descriptor.until, extra_facts=scenario.policy_fact_list())
    have = _route_projection(engine, schema)
    want = _route_projection(fresh, schema)
    return len(have - want), len(want - have)


#: Fault-injection hook: a worker executing the named run dies without
#: cleanup, exactly like an OOM kill — the crash-containment tests and the
#: chaos smoke script set this to provoke ``BrokenProcessPool``.
CRASH_RUN_ENV = "FVN_FAULT_CRASH_RUN_ID"


def execute_run(
    descriptor_data: dict, static_proofs: bool = False, obs: bool = False
) -> dict:
    """Execute one run from its plain-data descriptor (worker entry point).

    With ``obs`` the run executes under the :mod:`repro.obs` metrics
    registry and tracer and attaches their exports to the record's
    ledger-only ``obs`` field; every deterministic field — and the trace
    fingerprint — is byte-identical either way (``docs/OBSERVABILITY.md``).

    With ``static_proofs`` the monitor properties are discharged ahead of
    execution (:mod:`repro.ndlog.analysis.discharge`, cached per program ×
    policy, so a pool worker proves once for its whole chunk): proven
    monitor kinds are not attached at all — they are recorded with the
    clean report a violation-free dynamic check would produce, and the
    proof scripts land in the record's ledger-only ``static_proofs`` field.

    Proofs are discharged over fixpoint semantics, so skipping only applies
    to **monotone** runs (no churn, no loss): there every intermediate state
    is a prefix of the proved fixpoint.  Runs with deletions keep all their
    runtime monitors — reconvergence windows can transiently violate an
    invariant that provably holds at every settled state, and those
    transient flags must not be lost.  Either way the record is
    byte-identical to a fully runtime-monitored run of the same descriptor.
    """

    descriptor = RunDescriptor.from_dict(descriptor_data)
    if os.environ.get(CRASH_RUN_ENV) == descriptor.run_id:
        os._exit(17)
    if obs:
        # pool workers are reused across runs: start from a clean slate so
        # each record's obs block covers exactly its own run
        obs_metrics.enable()
        obs_metrics.registry().reset()
        obs_tracing.enable()
        obs_tracing.tracer().reset()
    else:
        obs_metrics.disable()
        obs_tracing.disable()
    started = time.perf_counter()
    scenario = _materialize(descriptor)
    program = build_program(descriptor)
    schema = schema_for_program(program)
    proven: set[str] = set()
    provenance: Optional[dict] = None
    if static_proofs:
        from ..ndlog.analysis.discharge import discharge_program

        discharge = discharge_program(program, policy=descriptor.policy)
        monotone = descriptor.churn_events == 0 and descriptor.loss == 0.0
        if monotone:
            proven = set(discharge.proven_monitors) & set(descriptor.monitors)
        provenance = discharge.to_dict()
        provenance["skipped_monitors"] = sorted(proven)
    # honors ``engine = [{shards = N}]`` / ``shards = [...]`` overrides:
    # shards > 1 builds the process-sharded coordinator, whose results are
    # byte-identical to the single-process engine for the same descriptor
    engine = create_engine(
        program, scenario.topology, config=descriptor.engine_config()
    )
    monitors = {
        kind: build_monitor(kind, schema)
        for kind in descriptor.monitors
        if kind not in proven
    }
    for monitor in monitors.values():
        engine.attach_monitor(monitor)
    if scenario.churn is not None:
        scenario.churn.apply_to_engine(engine)
    try:
        trace = engine.run(
            until=descriptor.until, extra_facts=scenario.policy_fact_list()
        )
    finally:
        engine.close()  # a no-op single-process; frees shard workers
    engine.finalize_monitors()
    trace.seeds["scenario"] = descriptor.seed
    stale = missing = None
    if descriptor.record_stale_routes:
        stale, missing = _stale_routes(engine, descriptor, scenario, schema)
    # reports interleave in descriptor.monitors order: a proven kind gets
    # the clean report a violation-free dynamic check would have produced
    reports = [
        clean_report(kind) if kind in proven else monitors[kind].report()
        for kind in descriptor.monitors
    ]
    obs_block: Optional[dict] = None
    if obs:
        wall = time.perf_counter() - started
        obs_metrics.inc("harness.runs")
        obs_metrics.observe("harness.run_seconds", wall)
        obs_tracing.tracer().record(
            "harness.run", started, wall, {"run_id": descriptor.run_id}
        )
        obs_block = {
            "metrics": obs_metrics.registry().export(),
            "trace": obs_tracing.tracer().export(),
        }
    record = RunRecord(
        run_id=descriptor.run_id,
        index=descriptor.index,
        params=descriptor.to_dict(),
        seeds=dict(trace.seeds),
        quiescent=trace.quiescent,
        finished_at=trace.finished_at,
        convergence_time=trace.convergence_time(),
        events=trace.events_processed,
        messages=trace.message_count,
        delivered_messages=trace.delivered_message_count,
        dropped_messages=engine.channel.dropped,
        retraction_messages=len(trace.retraction_messages()),
        retractions=trace.retraction_count,
        state_changes=trace.state_change_count,
        route_count=len(engine.rows(schema.best_predicate)),
        stale_routes=stale,
        missing_routes=missing,
        monitors=reports,
        monitors_ok=all(monitor.ok for monitor in monitors.values()),
        static_proofs=provenance,
        obs=obs_block,
        wall_time=round(time.perf_counter() - started, 6),
    )
    return record.to_dict()


@dataclass
class CampaignResult:
    """The outcome of one :func:`run_campaign` invocation."""

    spec: CampaignSpec
    records: list[RunRecord]
    executed: int
    resumed: int
    wall_time: float
    out_dir: Path
    summary: dict

    @property
    def run_count(self) -> int:
        return len(self.records)

    @property
    def runs_per_second(self) -> float:
        return self.executed / self.wall_time if self.wall_time > 0 else 0.0


ProgressCallback = Callable[[RunRecord, int, int], None]

#: pool breaks tolerated before the remaining runs execute one per pool,
#: where a worker death is unambiguously attributable to the run it killed
POOL_BREAK_LIMIT = 2


def _run_pool(
    todo: list[RunDescriptor],
    workers: int,
    finish: Callable[[dict], None],
    crashed: Callable[[RunDescriptor, str], dict],
    static_proofs: bool = False,
    obs: bool = False,
) -> None:
    """Drive ``todo`` through process pools, containing worker deaths.

    An exception *raised* by a run is deterministic — it is recorded as a
    crashed record immediately.  A worker process *dying* (``os._exit``,
    SIGKILL, OOM) breaks the whole ``ProcessPoolExecutor``, which cannot
    say *whose* worker died: every unfinished run is resubmitted to a
    fresh pool.  After :data:`POOL_BREAK_LIMIT` breaks the remaining runs
    are executed one per pool, where a break is unambiguously the
    submitted run's own death and is contained as a crashed record — so a
    run that reliably kills its worker costs a bounded number of respawns
    and never takes its cohort (or the campaign) down with it.
    """

    remaining = list(todo)
    breaks = 0
    while remaining:
        isolate = breaks >= POOL_BREAK_LIMIT
        batch = remaining[:1] if isolate else remaining
        deferred = remaining[1:] if isolate else []
        requeue: list[RunDescriptor] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (
                    descriptor,
                    pool.submit(
                        execute_run, descriptor.to_dict(), static_proofs, obs
                    )
                    if static_proofs or obs
                    else pool.submit(execute_run, descriptor.to_dict()),
                )
                for descriptor in batch
            ]
            for position, (descriptor, future) in enumerate(futures):
                try:
                    finish(future.result())
                except BrokenProcessPool as exc:
                    breaks += 1
                    if isolate:
                        finish(
                            crashed(
                                descriptor,
                                f"worker process died ({type(exc).__name__}: {exc})",
                            )
                        )
                    else:
                        requeue.append(descriptor)
                    # the pool is gone: salvage finished futures, requeue
                    # the rest, and respawn
                    for later, after in futures[position + 1:]:
                        if after.done() and after.exception() is None:
                            finish(after.result())
                        elif after.done() and not isinstance(
                            after.exception(), BrokenProcessPool
                        ):
                            finish(crashed(later, f"run raised: {after.exception()}"))
                        else:
                            after.cancel()
                            requeue.append(later)
                    break
                except Exception:
                    finish(crashed(descriptor, traceback.format_exc()))
        remaining = requeue + deferred


def _write_obs_artifacts(
    out_dir: Path,
    records: list[RunRecord],
    campaign_tracer: obs_tracing.Tracer,
    trace_out: Optional[str | Path],
) -> None:
    """Merge per-run obs blocks into campaign-level artifacts.

    ``metrics.json`` holds the merged metric snapshot (runs resumed from a
    pre-obs ledger carry no block and contribute nothing — the snapshot
    says how many runs it covers).  ``trace_out`` gets one Chrome
    trace-event document with a process row per covered run plus the
    campaign stages; per-process timestamps are relative to each worker's
    own tracer epoch, so rows align within a run, not across runs.
    """

    merged = obs_metrics.MetricsRegistry()
    processes: list[tuple[str, dict]] = [("campaign", campaign_tracer.export())]
    covered = 0
    for record in records:
        if not record.obs:
            continue
        covered += 1
        merged.merge(record.obs.get("metrics") or {})
        processes.append((record.run_id, record.obs.get("trace") or {}))
    payload = {
        "runs_covered": covered,
        "runs_total": len(records),
        "metrics": merged.snapshot(),
    }
    (out_dir / METRICS_NAME).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    if trace_out is not None:
        obs_tracing.write_chrome_trace(trace_out, processes)


def run_campaign(
    spec: CampaignSpec,
    out_dir: str | Path,
    *,
    workers: int = 1,
    resume: bool = True,
    progress: Optional[ProgressCallback] = None,
    trace_out: Optional[str | Path] = None,
) -> CampaignResult:
    """Execute a campaign spec, streaming records to ``out_dir``.

    ``workers > 1`` fans runs out over a process pool (per-run futures,
    records written back in submission order).  A run whose worker *dies*
    (OOM kill, segfault, injected crash) does not abort the campaign: the
    pool is respawned, the victim is retried once, and a persistent death
    is contained as a ``status="crashed"`` :class:`RunRecord` carrying the
    cause.  With ``resume`` (the default) runs already completed in the
    ledger are skipped — crashed records are kept for the audit trail but
    re-executed — so re-invoking a killed campaign continues where it
    stopped; ``resume=False`` discards previous artifacts and starts fresh.

    ``spec.obs`` — or a ``trace_out`` path, which implies it — runs every
    run under the :mod:`repro.obs` registry/tracer, stores the per-run obs
    blocks in the ledger, writes a merged ``metrics.json`` next to the
    summary, and (when ``trace_out`` is set) one Chrome trace-event JSON
    with a process row per run plus the campaign stages.  ``results.jsonl``
    stays byte-identical to a plain campaign either way.
    """

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    ledger_path = out_dir / LEDGER_NAME
    if not resume:
        for name in (LEDGER_NAME, RESULTS_NAME, SUMMARY_NAME):
            (out_dir / name).unlink(missing_ok=True)
    (out_dir / SPEC_NAME).write_text(
        json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    descriptors = spec.expand()
    # resume only runs whose *full* descriptor matches: the run_id encodes
    # the grid coordinates, but spec edits to shared fields (budgets,
    # soft-state lifetimes, engine override contents, monitor list…) keep
    # the same ids — those ledger entries are stale and must re-execute
    expected = {
        descriptor.run_id: json.loads(json.dumps(descriptor.to_dict()))
        for descriptor in descriptors
    }
    done = {
        run_id: record
        for run_id, record in read_ledger(ledger_path).items()
        if expected.get(run_id) == record.params and record.status == "ok"
    }
    todo = [d for d in descriptors if d.run_id not in done]
    resumed = len(descriptors) - len(todo)
    obs_enabled = spec.obs or trace_out is not None
    # the campaign stages get their own tracer instance: per-run execution
    # resets the process-global one (inline runs share this process)
    campaign_tracer = obs_tracing.Tracer() if obs_enabled else None
    started = time.perf_counter()
    completed = resumed

    def finish(record_data: dict) -> None:
        nonlocal completed
        record = RunRecord.from_dict(record_data)
        append_ledger(ledger_path, record)
        done[record.run_id] = record
        completed += 1
        if progress is not None:
            progress(record, completed, len(descriptors))

    def crashed(descriptor: RunDescriptor, error: str) -> dict:
        return RunRecord.crashed(
            descriptor.run_id,
            descriptor.index,
            json.loads(json.dumps(descriptor.to_dict())),
            error,
        ).to_dict()

    if todo:
        if workers <= 1:
            for descriptor in todo:
                try:
                    # legacy call shape when proofs and obs are off (tests
                    # and tooling wrap execute_run with a one-argument stub)
                    if spec.static_proofs or obs_enabled:
                        finish(
                            execute_run(
                                descriptor.to_dict(), spec.static_proofs, obs_enabled
                            )
                        )
                    else:
                        finish(execute_run(descriptor.to_dict()))
                except Exception:
                    finish(crashed(descriptor, traceback.format_exc()))
        else:
            _run_pool(todo, workers, finish, crashed, spec.static_proofs, obs_enabled)

    records = [done[descriptor.run_id] for descriptor in descriptors]
    wall_time = time.perf_counter() - started
    if campaign_tracer is not None:
        campaign_tracer.record(
            "campaign.execute",
            started,
            wall_time,
            {"runs": len(todo), "resumed": resumed, "workers": workers},
        )
    write_started = time.perf_counter()
    write_results(out_dir / RESULTS_NAME, records)
    if campaign_tracer is not None:
        campaign_tracer.record(
            "campaign.write_results",
            write_started,
            time.perf_counter() - write_started,
            {"records": len(records)},
        )
        _write_obs_artifacts(out_dir, records, campaign_tracer, trace_out)
    summary = {
        "campaign": spec.name,
        "workers": workers,
        "executed": len(todo),
        "resumed": resumed,
        "wall_time": round(wall_time, 3),
        **summarize(records),
    }
    (out_dir / SUMMARY_NAME).write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    return CampaignResult(
        spec=spec,
        records=records,
        executed=len(todo),
        resumed=resumed,
        wall_time=wall_time,
        out_dir=out_dir,
        summary=summary,
    )
