"""Per-run records and campaign artifact files.

Each executed run yields one :class:`RunRecord`.  The runner streams records
to two JSONL artifacts:

* ``ledger.jsonl`` — append-only, completion-ordered, includes wall-clock
  timing.  This is the **resume journal**: a killed campaign re-reads it and
  skips every run already on file (a torn final line from a hard kill is
  tolerated and re-executed).
* ``results.jsonl`` — written when the campaign finishes: one line per run
  in descriptor order, holding only the *deterministic* fields (everything
  except wall time) in canonical JSON.  Re-running the same spec produces a
  byte-identical ``results.jsonl``, which is what ``fvn-campaign diff``
  compares.

``summary.json`` aggregates the campaign (per-cell means, violation totals,
wall time, worker count).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional

LEDGER_NAME = "ledger.jsonl"
RESULTS_NAME = "results.jsonl"
SUMMARY_NAME = "summary.json"
SPEC_NAME = "spec.json"
#: merged per-run metric snapshot, written only for obs-enabled campaigns
METRICS_NAME = "metrics.json"


@dataclass
class RunRecord:
    """Everything observed about one campaign run."""

    run_id: str
    index: int
    params: dict
    seeds: dict
    quiescent: bool
    finished_at: float
    convergence_time: float
    events: int
    messages: int
    delivered_messages: int
    dropped_messages: int
    retraction_messages: int
    retractions: int
    state_changes: int
    route_count: int
    stale_routes: Optional[int]
    missing_routes: Optional[int]
    monitors: list = field(default_factory=list)
    monitors_ok: bool = True
    #: static-discharge provenance (proof scripts, algebra obligations)
    #: when the campaign ran with ``static_proofs``; ledger-only — popped
    #: from :meth:`deterministic_dict` so ``results.jsonl`` stays
    #: byte-identical to a fully runtime-monitored campaign
    static_proofs: Optional[dict] = None
    #: per-run observability block (``{"metrics": ..., "trace": ...}``)
    #: when the campaign ran with ``obs``; ledger-only — popped from
    #: :meth:`deterministic_dict` like ``static_proofs`` so obs-enabled
    #: campaigns keep ``results.jsonl`` byte-identical (docs/OBSERVABILITY.md)
    obs: Optional[dict] = None
    wall_time: float = 0.0
    #: ``"ok"`` or ``"crashed"`` (worker process died / raised); crashed
    #: runs stay in the ledger for the record but are re-executed on resume
    status: str = "ok"
    #: the traceback / cause when ``status != "ok"``
    error: Optional[str] = None

    # ------------------------------------------------------------------
    def deterministic_dict(self) -> dict:
        """The record without timing noise — byte-identical across re-runs."""

        out = self.to_dict()
        out.pop("wall_time", None)
        out.pop("static_proofs", None)
        out.pop("obs", None)
        return out

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "index": self.index,
            "params": self.params,
            "seeds": self.seeds,
            "quiescent": self.quiescent,
            "finished_at": self.finished_at,
            "convergence_time": self.convergence_time,
            "events": self.events,
            "messages": self.messages,
            "delivered_messages": self.delivered_messages,
            "dropped_messages": self.dropped_messages,
            "retraction_messages": self.retraction_messages,
            "retractions": self.retractions,
            "state_changes": self.state_changes,
            "route_count": self.route_count,
            "stale_routes": self.stale_routes,
            "missing_routes": self.missing_routes,
            "monitors": self.monitors,
            "monitors_ok": self.monitors_ok,
            "static_proofs": self.static_proofs,
            "obs": self.obs,
            "wall_time": self.wall_time,
            "status": self.status,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunRecord":
        # keys absent from the data (ledgers written before a field
        # existed) fall back to the dataclass defaults
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})

    @classmethod
    def crashed(cls, run_id: str, index: int, params: dict, error: str) -> "RunRecord":
        """The containment record for a run whose worker died or raised:
        numeric fields zeroed, monitors empty, ``status="crashed"`` with the
        cause — enough for the ledger to stay complete and resumable."""

        return cls(
            run_id=run_id,
            index=index,
            params=params,
            seeds={},
            quiescent=False,
            finished_at=0.0,
            convergence_time=0.0,
            events=0,
            messages=0,
            delivered_messages=0,
            dropped_messages=0,
            retraction_messages=0,
            retractions=0,
            state_changes=0,
            route_count=0,
            stale_routes=None,
            missing_routes=None,
            monitors=[],
            monitors_ok=False,
            status="crashed",
            error=error,
        )

    # ------------------------------------------------------------------
    @property
    def first_violation_time(self) -> Optional[float]:
        times = [
            m["first_violation_time"]
            for m in self.monitors
            if m.get("first_violation_time") is not None
        ]
        return min(times) if times else None

    @property
    def violation_count(self) -> int:
        return sum(m.get("violations", 0) for m in self.monitors)

    @property
    def active_violation_count(self) -> int:
        return sum(m.get("active_at_end", 0) for m in self.monitors)


def canonical_json(data) -> str:
    """Deterministic single-line JSON (sorted keys, no stray whitespace)."""

    return json.dumps(data, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Ledger (resume journal)
# ----------------------------------------------------------------------

def append_jsonl(path: Path, data: Mapping) -> None:
    """Append one canonical-JSON line to an append-only journal.

    The write is flushed before returning, so a SIGKILL loses at most the
    torn tail of the line being written — which :func:`read_jsonl` (and
    :func:`read_ledger`) skip on recovery.  Shared by the campaign ledger
    and the serving layer's update ledger (``docs/SERVING.md``).
    """

    with path.open("a") as handle:
        handle.write(canonical_json(data) + "\n")
        handle.flush()


def read_jsonl(path: Path) -> list[dict]:
    """Read a journal written by :func:`append_jsonl`, skipping torn lines.

    Only the *final* line of a journal can legitimately be torn (appends
    are flushed whole); malformed lines anywhere are skipped with the same
    tolerance so a recovered file never wedges recovery.
    """

    records: list[dict] = []
    if not path.exists():
        return records
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail of a killed process
    return records


def append_ledger(path: Path, record: RunRecord) -> None:
    append_jsonl(path, record.to_dict())


def read_ledger(path: Path) -> dict[str, RunRecord]:
    """Completed runs by id; malformed (torn) lines are skipped."""

    records: dict[str, RunRecord] = {}
    if not path.exists():
        return records
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                record = RunRecord.from_dict(data)
            except (json.JSONDecodeError, TypeError):
                continue  # torn tail of a killed campaign; re-run that one
            if record.run_id is not None:
                records[record.run_id] = record
    return records


# ----------------------------------------------------------------------
# Deterministic results + summary
# ----------------------------------------------------------------------

def write_results(path: Path, records: Iterable[RunRecord]) -> None:
    ordered = sorted(records, key=lambda r: r.index)
    with path.open("w") as handle:
        for record in ordered:
            handle.write(canonical_json(record.deterministic_dict()) + "\n")


def read_results(path: Path) -> list[RunRecord]:
    records = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(RunRecord.from_dict(json.loads(line)))
    return records


def percentile(values, fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 when empty).

    Matches the histogram percentiles in :mod:`repro.obs.metrics` so the
    per-cell ``p50``/``p95`` figures in ``summary.json`` and the campaign
    metrics snapshot agree on methodology.
    """

    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize(records: list[RunRecord]) -> dict:
    """Campaign-level aggregates.

    Everything except the wall-time percentiles is deterministic (a pure
    function of the deterministic record fields); ``p50_wall_time`` /
    ``p95_wall_time`` are 0.0 when records were re-read from
    ``results.jsonl``, which strips wall time.
    """

    def cell_key(record: RunRecord) -> str:
        params = record.params
        return (
            f"{params['family']}-{params['size']}"
            f"-{params['policy'] or 'none'}-c{params['churn_events']}"
            f"-l{params['loss']:g}-e{params['engine_index']}"
        )

    cells: dict[str, list[RunRecord]] = {}
    for record in records:
        cells.setdefault(cell_key(record), []).append(record)

    def mean(values) -> float:
        values = list(values)
        return sum(values) / len(values) if values else 0.0

    return {
        "runs": len(records),
        "crashed": sum(1 for r in records if r.status != "ok"),
        "quiescent": sum(1 for r in records if r.quiescent),
        "violations": sum(r.violation_count for r in records),
        "active_violations": sum(r.active_violation_count for r in records),
        "runs_with_violations": sum(1 for r in records if r.violation_count),
        "messages": sum(r.messages for r in records),
        "retraction_messages": sum(r.retraction_messages for r in records),
        "cells": {
            key: {
                "runs": len(group),
                "quiescent": sum(1 for r in group if r.quiescent),
                "mean_convergence_time": round(
                    mean(r.convergence_time for r in group), 6
                ),
                "mean_messages": round(mean(r.messages for r in group), 2),
                "p50_messages": round(percentile((r.messages for r in group), 0.50), 2),
                "p95_messages": round(percentile((r.messages for r in group), 0.95), 2),
                "p50_wall_time": round(percentile((r.wall_time for r in group), 0.50), 6),
                "p95_wall_time": round(percentile((r.wall_time for r in group), 0.95), 6),
                "violations": sum(r.violation_count for r in group),
                "active_violations": sum(r.active_violation_count for r in group),
                "stale_routes": sum(r.stale_routes or 0 for r in group),
            }
            for key, group in sorted(cells.items())
        },
    }
