"""Repository-level pytest configuration.

Adds the ``--benchmark-ci`` flag used by the CI benchmark job: after a
benchmark session it writes per-test timings to a JSON file (default
``BENCH_ci.json``) that ``benchmarks/check_regression.py`` compares against
the committed baseline ``benchmarks/BENCH_baseline.json``.

Also adds ``--update-goldens``: golden-file tests (the NDlog corpus in
``tests/ndlog/corpus/``) rewrite their pinned expectations instead of
asserting against them.  Rerun without the flag afterwards and review the
diff before committing.
"""

import json
import pathlib

import pytest


def pytest_addoption(parser):
    group = parser.getgroup("benchmark-ci")
    group.addoption(
        "--benchmark-ci",
        action="store_true",
        default=False,
        help="write per-benchmark timings to a JSON file for the CI regression gate",
    )
    group.addoption(
        "--benchmark-ci-output",
        default="BENCH_ci.json",
        help="where --benchmark-ci writes its timings (default: BENCH_ci.json)",
    )
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate golden files (corpus parse dumps, emitted codegen "
        "source) instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request):
    """Whether golden-file tests should rewrite their expectations."""

    return request.config.getoption("--update-goldens")


def pytest_sessionfinish(session, exitstatus):
    config = session.config
    if not config.getoption("--benchmark-ci"):
        return
    benchmark_session = getattr(config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    results = {}
    for bench in benchmark_session.benchmarks:
        if bench.stats is None or not bench.stats.rounds:
            continue
        results[bench.fullname] = {
            "min": bench.stats.min,
            "mean": bench.stats.mean,
            "median": bench.stats.median,
            "rounds": bench.stats.rounds,
        }
        if bench.extra_info:
            results[bench.fullname]["extra_info"] = bench.extra_info
    output = pathlib.Path(config.getoption("--benchmark-ci-output"))
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    terminal = config.pluginmanager.get_plugin("terminalreporter")
    if terminal is not None:
        terminal.write_line(
            f"benchmark-ci: wrote {len(results)} benchmark timings to {output}"
        )
