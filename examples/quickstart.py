"""Quickstart: verify and run the paper's path-vector protocol.

This is the FVN workflow of Figure 1 in ~40 lines:

1. take the NDlog path-vector program (paper Section 2.2),
2. compile it to a logical specification (arc 4),
3. prove route optimality — the paper's ``bestPathStrong`` theorem — with the
   7-step interactive script and with the automated strategy (arc 5),
4. execute the same program on the distributed runtime (arc 7) and confirm
   the verified property holds on the computed routes.

Run with:  python examples/quickstart.py
"""

from repro.fvn import VerificationManager, route_optimality, standard_property_suite
from repro.protocols import PathVectorProtocol, path_vector_program
from repro.workloads import ring_topology


def main() -> None:
    program = path_vector_program()
    print(f"NDlog program ({len(program.rules)} rules):")
    for rule in program.rules:
        print(f"  {rule}")

    # --- verification (arcs 4 + 5) -------------------------------------
    manager = VerificationManager(program)
    interactive = manager.prove_property(route_optimality(), use_script=True, auto=False)
    automated = manager.prove_property(route_optimality(), use_script=False, auto=True)
    print("\nVerification:")
    print(f"  interactive proof : {interactive.summary()}")
    print(f"  automated proof   : {automated.summary()}")
    report = manager.verify(standard_property_suite())
    print(f"  property corpus   : {report.proved_count}/{len(report.verdicts)} proved, "
          f"{report.automated_fraction:.0%} of steps automated")

    # --- execution (arc 7) ----------------------------------------------
    topology = ring_topology(5)
    protocol = PathVectorProtocol(topology)
    trace = protocol.run_distributed()
    print(f"\nDistributed execution on a 5-node ring: {trace.summary()}")
    print("Best paths from node 0:")
    for entry in sorted(protocol.best_paths(), key=lambda e: str(e.destination)):
        if entry.source == 0:
            print(f"  0 -> {entry.destination}: path={entry.path} cost={entry.cost}")

    # --- the verified property holds on the execution -------------------
    best = {(e.source, e.destination): e.cost for e in protocol.best_paths()}
    violations = [
        p for p in protocol.paths() if best[(p.source, p.destination)] > p.cost
    ]
    print(f"\nOptimality violations on the execution output: {len(violations)} (expected 0)")


if __name__ == "__main__":
    main()
