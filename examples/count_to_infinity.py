"""Count-to-infinity in the distance-vector protocol (paper §3.1, ref [22]).

FVN's verification side can establish that the distance-vector protocol
admits count-to-infinity behaviour while the path-vector protocol does not.
This example shows the behavioural side of that claim:

1. converge distance vector on a small line topology,
2. partition the destination away,
3. watch the metric climb by two each exchange until the RIP-style infinity
   bound — and watch split horizon remove the two-node loop,
4. contrast with the path-vector program, which simply loses the route.

Run with:  python examples/count_to_infinity.py
"""

from repro.ndlog import evaluate
from repro.protocols import DistanceVectorSimulator, path_vector_program
from repro.workloads import line_topology


def main() -> None:
    print("Topology: 0 -- 1 -- 2 (the link 1--2 will fail)\n")

    for split_horizon in (False, True):
        simulator = DistanceVectorSimulator(line_topology(3), split_horizon=split_horizon)
        report = simulator.failure_experiment(1, 2, observe=(0, 2))
        label = "with split horizon" if split_horizon else "plain distance vector"
        print(f"{label}:")
        print(f"  converged before failure in {report.rounds_before_failure} rounds")
        print(f"  metric at node 0 towards node 2 after the failure:")
        print(f"    {report.metric_trajectory}")
        print(f"  verdict: {report.summary()}\n")

    topology = line_topology(3)
    topology.fail_link(1, 2)
    db = evaluate(path_vector_program(), [("link", fact) for fact in topology.link_facts()])
    routes_to_2 = [row for row in db.rows("bestPath") if row[1] == 2]
    print("Path-vector protocol on the partitioned topology:")
    print(f"  best paths to the unreachable node 2: {routes_to_2} (none — no counting)")


if __name__ == "__main__":
    main()
