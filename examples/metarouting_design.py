"""Designing a routing protocol with the metarouting meta-model (paper §3.3).

A protocol designer composes base algebras, lets FVN discharge the
instantiation obligations mechanically, and only then turns the design into
routes — the "design phase verification" story of Section 3.3:

1. every base algebra's ``routeAlgebra`` obligations are discharged;
2. the designer composes ``lexProduct`` systems; the well-behaved ones
   discharge all obligations, the paper's ``BGPSystem`` does not;
3. the verified design is run as a generic vectoring protocol over a
   topology, and the observed convergence matches the prediction.

Run with:  python examples/metarouting_design.py
"""

from repro.analysis import render_table
from repro.metarouting import (
    LabeledGraph,
    add_algebra,
    all_base_algebras,
    analyze_convergence,
    bgp_system,
    instantiate,
    instantiate_all,
    safe_bgp_system,
    shortest_widest_system,
)
from repro.workloads import labeled_edges, random_topology


def main() -> None:
    # --- base algebra obligations -----------------------------------------
    print("Base algebra instantiation obligations (routeAlgebra theory):")
    rows = []
    for result in instantiate_all(all_base_algebras(), sample=24):
        rows.append([result.algebra, f"{result.discharged}/{result.total}",
                     "yes" if result.well_behaved else "no"])
    print(render_table(["algebra", "discharged", "monotone+isotone"], rows))

    # --- compositions -------------------------------------------------------
    print("\nComposed systems:")
    rows = []
    for system in (safe_bgp_system(max_cost=8), shortest_widest_system(max_cost=8), bgp_system(max_cost=8)):
        result = instantiate(system, sample=16)
        rows.append([system.name, f"{result.discharged}/{result.total}",
                     ", ".join(result.axiom_report.failed_axioms()) or "-"])
    print(render_table(["system", "discharged", "failed axioms"], rows))

    # --- from verified design to routes -------------------------------------
    topology = random_topology(7, seed=5, max_cost=4)
    graph = LabeledGraph(labeled_edges(topology))
    algebra = add_algebra(max_cost=64, labels=(1, 2, 3, 4))
    report = analyze_convergence(algebra, graph, runs=3)
    print(f"\n{report.summary()}")
    outcome = report.synchronous
    print("Routes from node 0 under the verified additive-cost design:")
    for destination in sorted(set(topology.nodes) - {0}, key=str):
        entry = outcome.route(0, destination)
        print(f"  0 -> {destination}: cost={entry.signature} path={entry.path}")


if __name__ == "__main__":
    main()
