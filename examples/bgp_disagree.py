"""Policy conflicts end to end: the Disagree scenario (paper Section 3.2).

The same policy conflict is examined from every layer the paper touches:

* the Stable Paths Problem gadget — two stable solutions (the conflict);
* SPVP dynamics — converges under fair schedules, oscillates under
  synchronised activations (delayed convergence);
* the component-based BGP model of Figure 2, iterated synchronously;
* the NDlog program generated from the verified specification, executed on
  the distributed runtime with Disagree versus conflict-free policies;
* the metarouting view — ``BGPSystem = lexProduct[LP, RC]`` fails the
  monotonicity obligation, which is the algebraic fingerprint of the same
  conflict, while a hop-count-first composition discharges all obligations.

Run with:  python examples/bgp_disagree.py
"""

from repro.bgp import (
    ComponentBGPSimulator,
    SPVPSimulator,
    disagree,
    disagree_policies,
    policy_facts,
    policy_path_vector_program,
    shortest_path_policies,
)
from repro.dn import DistributedEngine, Topology
from repro.metarouting import bgp_system, check_all_axioms, instantiate, safe_bgp_system


def main() -> None:
    # --- the gadget ------------------------------------------------------
    gadget = disagree()
    solutions = gadget.stable_solutions()
    print(f"Disagree gadget: {len(solutions)} stable solutions")
    for solution in solutions:
        print(f"  {solution}")

    # --- SPVP dynamics -----------------------------------------------------
    random_run = SPVPSimulator(gadget, seed=1).run(schedule="random")
    sync_run = SPVPSimulator(gadget, seed=1).run(schedule="simultaneous", max_activations=500)
    print(f"\nSPVP random schedule     : {random_run.summary()}")
    print(f"SPVP simultaneous steps  : {sync_run.summary()}")

    # --- the Figure 2 component model -------------------------------------
    component_sim = ComponentBGPSimulator(disagree_policies(), [(0, 1), (0, 2), (1, 2)], origin=0)
    rounds, converged = component_sim.run_to_fixpoint(max_rounds=20)
    print(f"\nComponent-model iteration: converged={converged} after {rounds} rounds "
          "(the conflict keeps the synchronous pipeline oscillating)")

    # --- the generated NDlog program on the distributed runtime -----------
    topology = Topology.from_edges([(0, 1, 1), (0, 2, 1), (1, 2, 1)])
    for label, policies in (("conflict-free", shortest_path_policies()),
                            ("Disagree", disagree_policies())):
        engine = DistributedEngine(policy_path_vector_program(), topology)
        trace = engine.run(extra_facts=policy_facts(policies, topology.nodes))
        print(f"Generated NDlog with {label:14s}: {trace.message_count} messages, "
              f"{trace.state_change_count} state changes")

    # --- the metarouting fingerprint ---------------------------------------
    bgp_report = check_all_axioms(bgp_system(max_cost=8), sample=16)
    safe_result = instantiate(safe_bgp_system(max_cost=8), sample=16)
    print(f"\nBGPSystem = lexProduct[LP, RC] fails: {bgp_report.failed_axioms()}")
    print(f"SafeBGPSystem obligations discharged: {safe_result.discharged}/{safe_result.total}")


if __name__ == "__main__":
    main()
