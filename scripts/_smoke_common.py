"""Shared plumbing for the CI smoke scripts.

The smoke scripts (``serving_smoke.py``, ``chaos_smoke.py``,
``obs_smoke.py``) all boot daemons and write evidence the same way; the
boot/poll/teardown logic lives here once.  Importing this module also puts
``src/`` on ``sys.path``, so scripts import it *before* any ``repro``
module::

    from _smoke_common import REPO_ROOT, start_daemon, write_evidence
    from repro.serving import ServingClient
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving import RouteServer, RouteService, ServerConfig, ServingClient  # noqa: E402


def serving_env() -> dict:
    """A subprocess environment with the repo's ``src/`` importable."""

    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_daemon(
    state_dir: Path, log_path: Path, *extra_args: str, boot_timeout: float = 60.0
) -> subprocess.Popen:
    """Boot ``python -m repro.serving serve`` and wait until it is ready.

    ``extra_args`` are appended to the serve command line (family, size,
    snapshot cadence, ``--trace-out``…).  A killed daemon leaves a stale
    ``server.json``; readiness means the NEW process has written its own.
    """

    (state_dir / "server.json").unlink(missing_ok=True)
    log = log_path.open("a")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serving", "serve",
            "--state-dir", str(state_dir),
            *extra_args,
        ],
        env=serving_env(),
        stdout=log,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + boot_timeout
    server_info = state_dir / "server.json"
    while time.time() < deadline:
        if server_info.exists() and proc.poll() is None:
            return proc
        if proc.poll() is not None:
            break
        time.sleep(0.2)
    raise SystemExit(f"daemon failed to boot; see {log_path}")


class ServerThread:
    """A RouteServer on a background event loop (same shape as the tests)."""

    def __init__(self, config: ServerConfig) -> None:
        self.service = RouteService(config)
        self.server = RouteServer(self.service)
        ready = threading.Event()

        def run() -> None:
            async def main() -> None:
                await self.server.start()
                ready.set()
                await self.server.serve_until_stopped()

            asyncio.run(main())

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not ready.wait(30):
            raise SystemExit("smoke: daemon thread failed to start")

    def stop(self) -> None:
        if self.thread.is_alive():
            try:
                with ServingClient(self.server.host, self.server.port) as client:
                    client.stop()
            except Exception:
                self.server.stop()
            self.thread.join(30)


def write_evidence(artifacts: Path, evidence: dict) -> None:
    """Write (and echo) the smoke run's ``evidence.json``."""

    artifacts.mkdir(parents=True, exist_ok=True)
    (artifacts / "evidence.json").write_text(
        json.dumps(evidence, indent=2, sort_keys=True, default=str) + "\n"
    )
    print(json.dumps(evidence, indent=2, sort_keys=True, default=str))
