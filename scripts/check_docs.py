#!/usr/bin/env python
"""Documentation gate for CI (stdlib only).

Two checks:

1. **Module docstrings** — every ``*.py`` module under ``src/repro`` must
   open with a module-level docstring stating what it implements (the
   repository convention: which paper section/mechanism, and the public
   entry points for packages).  Parsed with ``ast``; no imports.

2. **Config reference coverage** — every field of
   ``repro.dn.engine.EngineConfig``, ``repro.harness.spec.CampaignSpec``,
   and ``repro.serving.config.ServerConfig`` must be mentioned in
   ``docs/CONFIG.md``, so new knobs cannot land undocumented.  Field names
   are read from the class bodies with ``ast`` (annotated assignments), so
   the check needs no runtime dependencies.

3. **Serving surface coverage** — every ``--flag`` the ``fvn-serve`` CLI
   registers (``argparse`` string literals in ``repro/serving/cli.py``)
   must appear in the serving CLI section of ``docs/CONFIG.md``, and every
   wire verb in ``repro/serving/protocol.py`` (``UPDATE_VERBS`` +
   ``QUERY_VERBS``) must appear in ``docs/SERVING.md``.

4. **Fault-kind coverage** — every injectable fault kind in
   ``repro/dn/faults.py`` (``FAULT_KINDS``) must be documented in
   ``docs/FAULTS.md``, so new chaos faults cannot land undocumented.

5. **Diagnostic-code coverage** — every ``NDL###`` code the static
   analyzer can emit (the ``CODES`` dict in
   ``repro/ndlog/analysis/diagnostics.py``) must be documented in
   ``docs/ANALYSIS.md``, and every ``--flag`` of the ``fvn-lint`` CLI
   (``repro/ndlog/analysis/cli.py``) must appear there too, so
   ``fvn-lint`` cannot grow undocumented diagnostics or flags.

6. **Observability coverage** — every metric in
   ``repro/obs/metrics.py`` (``METRIC_NAMES``) and every span in
   ``repro/obs/tracing.py`` (``SPAN_NAMES``) must be documented in
   ``docs/OBSERVABILITY.md``, so the closed obs catalogs and their
   reference cannot drift.

Exit status 0 = all good; 1 = violations (listed on stdout).

Usage::

    python scripts/check_docs.py [--root .]
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys


def modules_missing_docstrings(src: pathlib.Path) -> list[pathlib.Path]:
    missing = []
    for path in sorted(src.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if not ast.get_docstring(tree):
            missing.append(path)
    return missing


def dataclass_fields(module_path: pathlib.Path, class_name: str) -> list[str]:
    """Annotated field names of a (data)class body, in declaration order."""

    tree = ast.parse(module_path.read_text(), filename=str(module_path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return [
                item.target.id
                for item in node.body
                if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
            ]
    raise SystemExit(f"class {class_name} not found in {module_path}")


def class_section(config_md: str, class_name: str) -> str:
    """The ``## …`` section of CONFIG.md documenting one class.

    Scoping the field search to the class's own section keeps the gate
    honest when two classes share a field name (``max_events``, ``seed``,
    ``shards``, … exist on both EngineConfig and CampaignSpec): mentioning
    it for one class must not satisfy the other.
    """

    for section in config_md.split("\n## "):
        heading = section.splitlines()[0] if section else ""
        if class_name in heading:
            return section
    raise SystemExit(f"docs/CONFIG.md has no section mentioning {class_name}")


def undocumented_fields(
    config_md: str, module_path: pathlib.Path, class_name: str
) -> list[str]:
    section = class_section(config_md, class_name)
    return [
        field
        for field in dataclass_fields(module_path, class_name)
        if f"`{field}`" not in section
    ]


def cli_flags(module_path: pathlib.Path) -> list[str]:
    """Every ``--flag`` string literal registered via ``add_argument``."""

    tree = ast.parse(module_path.read_text(), filename=str(module_path))
    flags = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                    and arg.value not in flags
                ):
                    flags.append(arg.value)
    return flags


def string_tuples(module_path: pathlib.Path, names: tuple[str, ...]) -> list[str]:
    """The string elements of module-level tuple assignments ``names``."""

    tree = ast.parse(module_path.read_text(), filename=str(module_path))
    values: list[str] = []
    for name in names:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == name for t in node.targets
                )
                and isinstance(node.value, ast.Tuple)
            ):
                values.extend(
                    elt.value
                    for elt in node.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                )
    if not values:
        raise SystemExit(f"no {'/'.join(names)} tuples found in {module_path}")
    return values


def diagnostic_codes(module_path: pathlib.Path) -> list[str]:
    """The analyzer's diagnostic codes: keys of the ``CODES`` dict literal."""

    tree = ast.parse(module_path.read_text(), filename=str(module_path))
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == "CODES" for t in node.targets)
            and isinstance(node.value, ast.Dict)
        ):
            return [
                key.value
                for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            ]
    raise SystemExit(f"no CODES dict literal found in {module_path}")


def wire_verbs(module_path: pathlib.Path) -> list[str]:
    """The serving verbs: string tuples ``UPDATE_VERBS`` + ``QUERY_VERBS``."""

    return string_tuples(module_path, ("UPDATE_VERBS", "QUERY_VERBS"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.root)
    failures = 0

    missing = modules_missing_docstrings(root / "src" / "repro")
    for path in missing:
        print(f"MISSING DOCSTRING: {path}")
        failures += 1

    config_md_path = root / "docs" / "CONFIG.md"
    if not config_md_path.exists():
        print(f"MISSING FILE: {config_md_path}")
        return 1
    config_md = config_md_path.read_text()
    for module, cls in [
        (root / "src" / "repro" / "dn" / "engine.py", "EngineConfig"),
        (root / "src" / "repro" / "harness" / "spec.py", "CampaignSpec"),
        (root / "src" / "repro" / "serving" / "config.py", "ServerConfig"),
    ]:
        for field in undocumented_fields(config_md, module, cls):
            print(f"UNDOCUMENTED FIELD: {cls}.{field} not mentioned in docs/CONFIG.md")
            failures += 1

    serving_cli_section = class_section(config_md, "Serving CLI")
    for flag in cli_flags(root / "src" / "repro" / "serving" / "cli.py"):
        if flag not in serving_cli_section:
            print(
                f"UNDOCUMENTED FLAG: fvn-serve {flag} not in the "
                "'Serving CLI' section of docs/CONFIG.md"
            )
            failures += 1

    serving_md_path = root / "docs" / "SERVING.md"
    if not serving_md_path.exists():
        print(f"MISSING FILE: {serving_md_path}")
        failures += 1
    else:
        serving_md = serving_md_path.read_text()
        for verb in wire_verbs(root / "src" / "repro" / "serving" / "protocol.py"):
            if f"`{verb}`" not in serving_md:
                print(f"UNDOCUMENTED VERB: {verb} not mentioned in docs/SERVING.md")
                failures += 1

    faults_md_path = root / "docs" / "FAULTS.md"
    if not faults_md_path.exists():
        print(f"MISSING FILE: {faults_md_path}")
        failures += 1
    else:
        faults_md = faults_md_path.read_text()
        for kind in string_tuples(
            root / "src" / "repro" / "dn" / "faults.py", ("FAULT_KINDS",)
        ):
            if f"`{kind}`" not in faults_md:
                print(f"UNDOCUMENTED FAULT KIND: {kind} not mentioned in docs/FAULTS.md")
                failures += 1

    analysis_md_path = root / "docs" / "ANALYSIS.md"
    if not analysis_md_path.exists():
        print(f"MISSING FILE: {analysis_md_path}")
        failures += 1
    else:
        analysis_md = analysis_md_path.read_text()
        diagnostics_py = (
            root / "src" / "repro" / "ndlog" / "analysis" / "diagnostics.py"
        )
        for code in diagnostic_codes(diagnostics_py):
            if f"`{code}`" not in analysis_md:
                print(
                    f"UNDOCUMENTED DIAGNOSTIC: {code} not mentioned in "
                    "docs/ANALYSIS.md"
                )
                failures += 1
        for flag in cli_flags(root / "src" / "repro" / "ndlog" / "analysis" / "cli.py"):
            if flag not in analysis_md:
                print(
                    f"UNDOCUMENTED FLAG: fvn-lint {flag} not mentioned in "
                    "docs/ANALYSIS.md"
                )
                failures += 1

    obs_md_path = root / "docs" / "OBSERVABILITY.md"
    if not obs_md_path.exists():
        print(f"MISSING FILE: {obs_md_path}")
        failures += 1
    else:
        obs_md = obs_md_path.read_text()
        obs_dir = root / "src" / "repro" / "obs"
        for label, module, names in [
            ("METRIC", obs_dir / "metrics.py", ("METRIC_NAMES",)),
            ("SPAN", obs_dir / "tracing.py", ("SPAN_NAMES",)),
        ]:
            for name in string_tuples(module, names):
                if f"`{name}`" not in obs_md:
                    print(
                        f"UNDOCUMENTED {label}: {name} not mentioned in "
                        "docs/OBSERVABILITY.md"
                    )
                    failures += 1

    if failures:
        print(f"\n{failures} documentation violation(s)")
        return 1
    print(
        "docs check: all modules documented, all config fields, serving "
        "flags, wire verbs, fault kinds, diagnostic codes, lint flags, "
        "and obs metric/span names covered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
