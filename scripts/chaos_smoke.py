#!/usr/bin/env python
"""CI chaos smoke: seeded faults against the sharded and serving runtimes.

Two legs, both driven by seeded :class:`~repro.dn.faults.FaultPlan`s so
every provoked failure is exactly reproducible:

1. **Sharded engine** — run a churn scenario on a process-sharded engine
   while the plan SIGKILLs shard workers and severs coordinator pipes
   mid-fixpoint; require the runtime invariant monitors green and the
   final ``Trace.fingerprint()`` **byte-identical** to a fault-free
   control run.
2. **Serving daemon** — drive a live update stream through a socket
   daemon while the plan resets client connections before and after
   dispatch and tears a snapshot write; the client retries with request
   keys, and the smoke requires every update applied exactly once, the
   daemon surviving every disconnect, and the final fingerprint matching
   a fault-free control service fed the same updates — including after a
   restart that must recover past the torn snapshot.

The injected-fault event logs are written to ``--artifacts`` as evidence.
Exits non-zero on any failure.  Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py --artifacts chaos-out
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from _smoke_common import ServerThread, write_evidence  # noqa: F401 (sets sys.path)

from repro.bgp.generator import policy_path_vector_program  # noqa: E402
from repro.dn import EngineConfig, FaultPlan, ShardedEngine, create_engine  # noqa: E402
from repro.dn.faults import ANY_SCOPE, SERVING_SCOPE, Fault  # noqa: E402
from repro.fvn.monitors import schema_for_program, standard_monitors  # noqa: E402
from repro.scenarios import churn_updates, generate_scenario  # noqa: E402
from repro.serving import RouteService, ServerConfig, ServingClient  # noqa: E402

FAMILY = "tree"
SIZE = 16
SHARDS = 3
CHURN_EVENTS = 4
PLAN_SEED = 1009


def sharded_run(faults: FaultPlan | None) -> dict:
    """One sharded churn run (optionally chaotic) → its observables."""

    scenario = generate_scenario(
        FAMILY,
        size=SIZE,
        seed=0,
        policy="gao_rexford",
        churn_events=CHURN_EVENTS,
        churn_restore_delay=1.0,
        loss=0.01,
    )
    program = policy_path_vector_program()
    config = EngineConfig(
        seed=0, shards=SHARDS, shard_transport="process", shard_timeout=30.0
    )
    engine = create_engine(program, scenario.topology, config=config)
    assert isinstance(engine, ShardedEngine)
    injector = engine.inject_faults(faults) if faults is not None else None
    monitors = standard_monitors(schema_for_program(program))
    for monitor in monitors:
        engine.attach_monitor(monitor)
    scenario.churn.apply_to_engine(engine)
    try:
        trace = engine.run(until=12.0, extra_facts=scenario.policy_fact_list())
        engine.finalize_monitors()
        engine.validate_shards()
        return {
            "fingerprint": trace.fingerprint(),
            "quiescent": trace.quiescent,
            "monitors_ok": all(monitor.ok for monitor in monitors),
            "restarts": list(engine.shard_restarts),
            "injected": injector.fired() if injector is not None else [],
        }
    finally:
        engine.close()


def chaos_sharded(evidence: dict) -> None:
    plan = FaultPlan(
        faults=FaultPlan.generate(
            PLAN_SEED,
            kinds=("kill_worker",),
            scopes=(0, 1, 2, ANY_SCOPE),
            count=3,
            max_at=25,
        ).faults
        + (Fault(kind="sever_pipe", scope=ANY_SCOPE, at=4),),
        seed=PLAN_SEED,
    )
    control = sharded_run(None)
    chaotic = sharded_run(plan)
    evidence["sharded"] = {
        "plan": plan.to_dict(),
        "injected": chaotic["injected"],
        "worker_restarts": chaotic["restarts"],
        "monitors_ok": chaotic["monitors_ok"],
        "control_fingerprint": control["fingerprint"],
        "chaotic_fingerprint": chaotic["fingerprint"],
        "byte_identical": chaotic["fingerprint"] == control["fingerprint"],
    }
    if not chaotic["injected"]:
        raise SystemExit("sharded chaos: no fault fired — plan never exercised")
    if not evidence["sharded"]["byte_identical"]:
        raise SystemExit("sharded chaos: fingerprint diverged from fault-free control")
    if not chaotic["monitors_ok"]:
        raise SystemExit("sharded chaos: runtime monitors went red")


def chaos_serving(evidence: dict, state_root: Path) -> None:
    scenario = generate_scenario(
        FAMILY, size=SIZE, seed=0, churn_events=CHURN_EVENTS, churn_restore_delay=1.0
    )
    updates = churn_updates(scenario)
    # both reset phases must fire: a "recv" drop before dispatch, and two
    # "ack" aborts after the apply — the lost-ack case the request-key
    # dedup exists for — plus one torn snapshot write
    plan = FaultPlan(
        faults=(
            Fault(kind="reset_connection", scope=SERVING_SCOPE, at=2, arg="recv"),
            Fault(kind="reset_connection", scope=SERVING_SCOPE, at=4, arg="ack"),
            Fault(kind="reset_connection", scope=SERVING_SCOPE, at=7, arg="ack"),
            Fault(kind="tear_snapshot", scope=SERVING_SCOPE, at=1),
        ),
        seed=PLAN_SEED,
    )
    plan_path = state_root / "serving-plan.json"
    plan.save(plan_path)
    state_dir = state_root / "state"
    config = ServerConfig(
        family=FAMILY,
        size=SIZE,
        state_dir=str(state_dir),
        snapshot_every=3,
        fault_plan=str(plan_path),
    )
    daemon = ServerThread(config)
    acks = []
    try:
        with ServingClient(
            daemon.server.host, daemon.server.port, timeout=60, retries=5
        ) as client:
            for n, update in enumerate(updates):
                acks.append(
                    client.call(
                        update["verb"], update["args"], request_key=f"chaos:{n}"
                    )
                )
            fingerprint = client.query("fingerprint")
            status = client.query("status")
    finally:
        daemon.stop()

    # the fault-free control: the same update stream, applied directly
    control = RouteService(
        ServerConfig(family=FAMILY, size=SIZE, snapshot_every=0)
    )
    try:
        for update in updates:
            control.apply_update(update["verb"], update["args"])
        control_fingerprint = control.engine.trace.fingerprint()
    finally:
        control.close()

    # restart: recovery must shrug off the torn snapshot (full replay)
    reborn = RouteService(
        ServerConfig(
            family=FAMILY, size=SIZE, state_dir=str(state_dir), snapshot_every=3
        )
    )
    try:
        recovered_from = reborn.recovered_from
        recovered_fingerprint = reborn.engine.trace.fingerprint()
    finally:
        reborn.close()

    injector = daemon.service.fault_injector
    evidence["serving"] = {
        "plan": plan.to_dict(),
        "injected": injector.fired() if injector else [],
        "updates": len(updates),
        "acks": len(acks),
        "deduplicated_retries": sum(1 for a in acks if a.get("deduplicated")),
        "final_seq": status["seq"],
        "monitors_ok": status["monitors_ok"],
        "chaotic_fingerprint": fingerprint["fingerprint"],
        "control_fingerprint": control_fingerprint,
        "byte_identical": fingerprint["fingerprint"] == control_fingerprint,
        "recovered_from": recovered_from,
        "recovered_identical": recovered_fingerprint == fingerprint["fingerprint"],
    }
    leg = evidence["serving"]
    if not leg["injected"]:
        raise SystemExit("serving chaos: no fault fired — plan never exercised")
    if leg["deduplicated_retries"] < 1:
        raise SystemExit(
            "serving chaos: no retry was deduplicated — the lost-ack path "
            "never ran"
        )
    if leg["final_seq"] != len(updates):
        raise SystemExit(
            f"serving chaos: {len(updates)} updates yielded seq {leg['final_seq']} "
            "— a retry double-applied or an update was lost"
        )
    if not leg["monitors_ok"]:
        raise SystemExit("serving chaos: runtime monitors went red")
    if not leg["byte_identical"]:
        raise SystemExit("serving chaos: fingerprint diverged from fault-free control")
    if not leg["recovered_identical"]:
        raise SystemExit("serving chaos: post-restart state diverged (torn snapshot?)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifacts", default="chaos-smoke-out", help="evidence output directory"
    )
    args = parser.parse_args()
    artifacts = Path(args.artifacts)
    evidence: dict = {"plan_seed": PLAN_SEED, "family": FAMILY, "size": SIZE}

    chaos_sharded(evidence)
    with tempfile.TemporaryDirectory() as tmp:
        chaos_serving(evidence, Path(tmp))

    write_evidence(artifacts, evidence)
    print(
        f"chaos smoke OK: {len(evidence['sharded']['injected'])} shard faults and "
        f"{len(evidence['serving']['injected'])} serving faults injected, "
        "monitors green, fingerprints byte-identical to fault-free controls"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
