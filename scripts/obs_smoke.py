#!/usr/bin/env python
"""CI smoke test for the observability subsystem (``repro.obs``).

Checks the one hard promise the subsystem makes — *observation changes
nothing* — and that each pillar actually produces its artifact:

1. **Campaign leg** — run the same small campaign grid twice, plain and
   with ``obs`` + a Chrome trace; require ``results.jsonl`` byte-identical
   across the two, the merged ``metrics.json`` to cover every run, and the
   trace to be a loadable Chrome trace-event document (also summarized
   through the ``fvn-trace`` CLI).
2. **Serving leg** — boot a daemon with ``--trace-out`` over the real
   socket; push an update; resolve a derived ``bestPath`` row to base
   facts through the ``explain`` verb; read the ``metrics`` verb; stop and
   require the daemon's trace file to appear and load.

Evidence lands in ``--artifacts``.  Exits non-zero on any failure.  Usage::

    PYTHONPATH=src python scripts/obs_smoke.py --artifacts obs-out
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path

from _smoke_common import start_daemon, write_evidence  # noqa: F401 (sets sys.path)

from repro.harness.runner import run_campaign  # noqa: E402
from repro.harness.spec import spec_from_mapping  # noqa: E402
from repro.obs.cli import load_trace, summarize_trace  # noqa: E402
from repro.serving import ServingClient  # noqa: E402

FAMILY = "tree"
SIZE = 12

CAMPAIGN = {
    "name": "obs-smoke",
    "families": [FAMILY],
    "sizes": [SIZE],
    "policies": ["none", "shortest_path"],
    "seeds": [0, 1],
    "churn_events": [2],
    "loss": [0.0],
    "until": 15.0,
}


def campaign_leg(evidence: dict, artifacts: Path, tmp: Path) -> None:
    plain = run_campaign(spec_from_mapping(dict(CAMPAIGN)), tmp / "plain")
    trace_path = artifacts / "campaign-trace.json"
    observed = run_campaign(
        spec_from_mapping(dict(CAMPAIGN, obs=True)), tmp / "obs", trace_out=trace_path
    )
    plain_bytes = (tmp / "plain" / "results.jsonl").read_bytes()
    obs_bytes = (tmp / "obs" / "results.jsonl").read_bytes()
    metrics = json.loads((tmp / "obs" / "metrics.json").read_text())
    shutil.copy(tmp / "obs" / "metrics.json", artifacts / "metrics.json")
    events = load_trace(trace_path)
    evidence["campaign"] = {
        "runs": len(observed.records),
        "results_identical": plain_bytes == obs_bytes,
        "metrics_runs_covered": metrics["runs_covered"],
        "metric_counters": metrics["metrics"]["counters"],
        "trace_events": len(events),
        "trace_span_names": sorted({e["name"] for e in events}),
        "trace_summary": summarize_trace(events)[:5],
    }
    leg = evidence["campaign"]
    if not leg["results_identical"]:
        raise SystemExit("obs smoke: obs-enabled results.jsonl diverged from plain run")
    if leg["metrics_runs_covered"] != len(plain.records):
        raise SystemExit("obs smoke: metrics.json does not cover every run")
    if not leg["trace_events"]:
        raise SystemExit("obs smoke: campaign trace holds no complete-span events")
    if "harness.run" not in leg["trace_span_names"]:
        raise SystemExit("obs smoke: campaign trace is missing harness.run spans")


def serving_leg(evidence: dict, artifacts: Path, tmp: Path) -> None:
    state_dir = tmp / "state"
    state_dir.mkdir(parents=True)
    trace_path = artifacts / "serving-trace.json"
    daemon = start_daemon(
        state_dir, artifacts / "daemon.log",
        "--family", FAMILY, "--size", str(SIZE),
        "--trace-out", str(trace_path),
    )
    try:
        with ServingClient.from_state_dir(state_dir, timeout=120) as client:
            ack = client.call("link_fail", {"src": 0, "dst": 1})
            best = client.best_path(0, SIZE - 1)
            explanation = client.call("explain", {"src": 0, "dst": SIZE - 1})
            metrics = client.call("metrics", {})
            client.query("stop")
    finally:
        daemon.wait(timeout=60)
        if daemon.poll() is None:
            daemon.kill()

    def leaves(node: dict) -> list[str]:
        if not node.get("derivations"):
            return [node["kind"]]
        return [
            kind
            for derivation in node["derivations"]
            for child in derivation["body"]
            for kind in leaves(child)
        ]

    dag = explanation["explanation"]
    events = load_trace(trace_path)
    evidence["serving"] = {
        "update_settled": ack["settled"],
        "best_found": best["found"],
        "explain_found": explanation["found"],
        "explain_root": f"{dag['predicate']}{tuple(dag['values'])}",
        "explain_leaf_kinds": sorted(set(leaves(dag))),
        "metric_counters": metrics["metrics"]["counters"],
        "trace_events": len(events),
        "trace_span_names": sorted({e["name"] for e in events}),
    }
    leg = evidence["serving"]
    if not (leg["update_settled"] and leg["best_found"] and leg["explain_found"]):
        raise SystemExit(f"obs smoke: serving leg failed to settle/answer: {leg}")
    if leg["explain_leaf_kinds"] != ["base"]:
        raise SystemExit(
            f"obs smoke: explain DAG leaves are {leg['explain_leaf_kinds']}, "
            "expected only base facts"
        )
    if leg["metric_counters"].get("serving.updates", 0) < 1:
        raise SystemExit("obs smoke: metrics verb shows no applied update")
    if "serving.update" not in leg["trace_span_names"]:
        raise SystemExit("obs smoke: daemon trace is missing serving.update spans")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifacts", default="obs-smoke-out", help="evidence output directory"
    )
    args = parser.parse_args()
    artifacts = Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)
    evidence: dict = {"family": FAMILY, "size": SIZE}

    with tempfile.TemporaryDirectory() as tmp:
        campaign_leg(evidence, artifacts, Path(tmp) / "campaign")
        serving_leg(evidence, artifacts, Path(tmp) / "serving")

    write_evidence(artifacts, evidence)
    print(
        f"obs smoke OK: {evidence['campaign']['runs']} runs byte-identical with "
        f"obs on, {evidence['campaign']['trace_events']} campaign spans, "
        f"explain resolved {evidence['serving']['explain_root']} to base facts"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
