#!/usr/bin/env python
"""CI smoke test for the routing service daemon.

Exercises the full serving stack the way an operator would, end to end:

1. boot a durable daemon through the CLI (``python -m repro.serving serve``);
2. hammer it with concurrent clients — one thread pushing the scenario's
   churn schedule as live updates, two threads reading best paths — over
   the real socket;
3. check the runtime invariant monitors are green and every update settled;
4. SIGKILL the daemon mid-life, restart it, and require the recovered
   ``Trace.fingerprint()`` to be **byte-identical** to the pre-kill state;
5. write the collected evidence to ``--artifacts`` for upload.

Exits non-zero on any failure.  Usage::

    PYTHONPATH=src python scripts/serving_smoke.py --artifacts smoke-out
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

from _smoke_common import start_daemon, write_evidence  # noqa: F401 (sets sys.path)

from repro.scenarios import churn_updates, generate_scenario  # noqa: E402
from repro.serving import ServingClient  # noqa: E402

FAMILY = "tree"
SIZE = 20
CHURN_EVENTS = 6


def boot(state_dir: Path, log_path: Path) -> subprocess.Popen:
    return start_daemon(
        state_dir, log_path,
        "--family", FAMILY, "--size", str(SIZE),
        "--snapshot-every", "4",
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifacts", default="serving-smoke-out", help="evidence output directory"
    )
    args = parser.parse_args()
    artifacts = Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)
    evidence: dict = {"family": FAMILY, "size": SIZE}

    # the same churn a campaign cell would schedule, replayed live
    scenario = generate_scenario(
        FAMILY, size=SIZE, seed=0, churn_events=CHURN_EVENTS, churn_restore_delay=1.0
    )
    updates = churn_updates(scenario)
    assert updates, "scenario produced no churn to drive"

    with tempfile.TemporaryDirectory() as tmp:
        state_dir = Path(tmp) / "state"
        state_dir.mkdir()
        log_path = artifacts / "daemon.log"
        daemon = boot(state_dir, log_path)
        try:
            acks: list = []
            query_count = [0, 0]

            def updater() -> None:
                with ServingClient.from_state_dir(state_dir, timeout=120) as client:
                    for update in updates:
                        acks.append(client.call(update["verb"], update["args"]))

            def querier(slot: int) -> None:
                with ServingClient.from_state_dir(state_dir, timeout=120) as client:
                    for dst in range(1, SIZE, 2):
                        answer = client.best_path(0, dst)
                        assert "found" in answer
                        query_count[slot] += 1

            threads = [threading.Thread(target=updater)] + [
                threading.Thread(target=querier, args=(slot,)) for slot in (0, 1)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(300)
            if any(thread.is_alive() for thread in threads):
                raise SystemExit("smoke clients timed out")

            with ServingClient.from_state_dir(state_dir, timeout=120) as client:
                status = client.query("status")
                fingerprint = client.query("fingerprint")
            evidence["updates_acked"] = len(acks)
            evidence["all_settled"] = all(ack["settled"] for ack in acks)
            evidence["queries_answered"] = sum(query_count)
            evidence["monitors_ok"] = status["monitors_ok"]
            evidence["monitors"] = status["monitors"]
            evidence["pre_kill_fingerprint"] = fingerprint["fingerprint"]
            evidence["pre_kill_seq"] = fingerprint["seq"]
            if not (evidence["all_settled"] and evidence["monitors_ok"]):
                raise SystemExit(f"serving smoke failed pre-kill: {evidence}")

            # hard-kill mid-life, restart, demand byte-identical recovery
            daemon.kill()
            daemon.wait(timeout=60)
            daemon = boot(state_dir, log_path)
            with ServingClient.from_state_dir(state_dir, timeout=120) as client:
                recovered = client.query("fingerprint")
                recovered_status = client.query("status")
                client.query("stop")
            daemon.wait(timeout=60)
            evidence["recovered_from"] = recovered_status["recovered_from"]
            evidence["recovered_seq"] = recovered["seq"]
            evidence["recovered_fingerprint"] = recovered["fingerprint"]
            evidence["byte_identical"] = (
                recovered["fingerprint"] == evidence["pre_kill_fingerprint"]
                and recovered["seq"] == evidence["pre_kill_seq"]
            )
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)

    write_evidence(artifacts, evidence)
    if not evidence["byte_identical"]:
        print("FAIL: recovered state diverged from pre-kill fingerprint")
        return 1
    print(
        f"serving smoke OK: {evidence['updates_acked']} updates, "
        f"{evidence['queries_answered']} queries, monitors green, "
        f"crash recovery byte-identical ({evidence['recovered_from']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
