"""Unit coverage of :mod:`repro.obs.tracing`: span capture, the retained-
span cap, and Chrome trace-event export."""

import json

import pytest

from repro.obs import tracing


@pytest.fixture(autouse=True)
def clean_tracer():
    was_enabled = tracing.ENABLED
    tracing.disable()
    tracing.tracer().reset()
    yield
    tracing.tracer().reset()
    if was_enabled:
        tracing.enable()
    else:
        tracing.disable()


class TestSpans:
    def test_disabled_span_records_nothing(self):
        with tracing.span("engine.run"):
            pass
        assert tracing.tracer().export() == {"spans": [], "dropped": 0}

    def test_enabled_span_records_name_duration_args(self):
        tracing.enable()
        with tracing.span("engine.flush", node="n3", ops=2):
            pass
        exported = tracing.tracer().export()
        (item,) = exported["spans"]
        assert item["name"] == "engine.flush"
        assert item["args"] == {"node": "n3", "ops": 2}
        assert item["dur"] >= 0 and item["ts"] >= 0

    def test_span_records_even_when_body_raises(self):
        tracing.enable()
        with pytest.raises(RuntimeError):
            with tracing.span("serving.update", verb="link_fail"):
                raise RuntimeError("boom")
        assert tracing.tracer().export()["spans"][0]["name"] == "serving.update"

    def test_unknown_span_name_rejected(self):
        with pytest.raises(ValueError, match="unknown span"):
            tracing.tracer().record("engine.bogus", 0.0, 1.0, {})

    def test_cap_drops_and_counts(self):
        tracer = tracing.Tracer(max_spans=2)
        for _ in range(5):
            tracer.record("engine.flush", 0.0, 0.001, {})
        exported = tracer.export()
        assert len(exported["spans"]) == 2
        assert exported["dropped"] == 3


class TestChromeExport:
    def test_document_shape(self):
        tracer = tracing.Tracer()
        tracer.record("harness.run", 0.0, 0.5, {"run_id": "r0"})
        doc = tracing.chrome_trace([("run-a", tracer.export())])
        assert doc["displayTimeUnit"] == "ms"
        kinds = {event["ph"] for event in doc["traceEvents"]}
        assert kinds == {"M", "X"}
        meta = next(e for e in doc["traceEvents"] if e["ph"] == "M")
        assert meta["name"] == "process_name" and meta["args"] == {"name": "run-a"}
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["name"] == "harness.run" and span["pid"] == meta["pid"]

    def test_processes_get_distinct_pids(self):
        a, b = tracing.Tracer(), tracing.Tracer()
        doc = tracing.chrome_trace([("a", a.export()), ("b", b.export())])
        pids = [e["pid"] for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(pids) == len(set(pids)) == 2

    def test_dropped_counts_aggregate(self):
        tracer = tracing.Tracer(max_spans=0)
        tracer.record("engine.run", 0.0, 1.0, {})
        doc = tracing.chrome_trace([("x", tracer.export())])
        assert doc["otherData"]["dropped_spans"] == 1

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        tracer = tracing.Tracer()
        tracer.record("campaign.execute", 0.0, 2.0, {})
        target = tmp_path / "nested" / "trace.json"
        written = tracing.write_chrome_trace(target, [("campaign", tracer.export())])
        assert written == target
        document = json.loads(target.read_text())
        assert isinstance(document["traceEvents"], list)
