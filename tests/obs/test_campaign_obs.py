"""Harness-level obs: byte-identical ``results.jsonl``, per-run obs
blocks in the ledger, merged campaign artifacts, and summary percentiles."""

import json

import pytest

from repro.harness.records import METRICS_NAME, RunRecord, percentile, read_ledger
from repro.harness.runner import execute_run, run_campaign
from repro.harness.spec import spec_from_mapping
from repro.obs import metrics, tracing

BASE_SPEC = {
    "name": "obs-camp",
    "families": ["tree"],
    "sizes": [8],
    "policies": ["none"],
    "seeds": [0, 1],
    "churn_events": [1],
    "loss": [0.0],
    "until": 10.0,
}


@pytest.fixture(autouse=True)
def restore_obs_state():
    metrics_on, tracing_on = metrics.ENABLED, tracing.ENABLED
    yield
    metrics.registry().reset()
    tracing.tracer().reset()
    (metrics.enable if metrics_on else metrics.disable)()
    (tracing.enable if tracing_on else tracing.disable)()


class TestCampaignObs:
    def test_results_byte_identical_and_artifacts_written(self, tmp_path):
        plain = run_campaign(spec_from_mapping(dict(BASE_SPEC)), tmp_path / "plain")
        trace_path = tmp_path / "trace.json"
        observed = run_campaign(
            spec_from_mapping(dict(BASE_SPEC, obs=True)),
            tmp_path / "obs",
            trace_out=trace_path,
        )
        assert len(observed.records) == len(plain.records) == 2

        plain_bytes = (tmp_path / "plain" / "results.jsonl").read_bytes()
        obs_bytes = (tmp_path / "obs" / "results.jsonl").read_bytes()
        assert plain_bytes == obs_bytes

        # every executed run carries an obs block in the ledger...
        ledgered = read_ledger(tmp_path / "obs" / "ledger.jsonl")
        for record in ledgered.values():
            assert record.obs is not None
            assert record.obs["metrics"]["counters"]["harness.runs"] == 1
            assert record.obs["trace"]["spans"]
        # ...merged into metrics.json...
        merged = json.loads((tmp_path / "obs" / METRICS_NAME).read_text())
        assert merged["runs_covered"] == 2
        assert merged["metrics"]["counters"]["harness.runs"] == 2
        # ...and the Chrome trace has a process row per run + the campaign
        document = json.loads(trace_path.read_text())
        labels = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert "campaign" in labels and len(labels) == 3
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert {"campaign.execute", "harness.run", "engine.run"} <= names

    def test_trace_out_alone_implies_obs(self, tmp_path):
        run_campaign(
            spec_from_mapping(dict(BASE_SPEC)),
            tmp_path / "c",
            trace_out=tmp_path / "t.json",
        )
        assert (tmp_path / "t.json").exists()
        assert (tmp_path / "c" / METRICS_NAME).exists()

    def test_plain_campaign_writes_no_obs_artifacts(self, tmp_path):
        run_campaign(spec_from_mapping(dict(BASE_SPEC)), tmp_path / "c")
        assert not (tmp_path / "c" / METRICS_NAME).exists()
        for record in read_ledger(tmp_path / "c" / "ledger.jsonl").values():
            assert record.obs is None

    def test_report_metrics_renders_merged_counters(self, tmp_path):
        from repro.harness.report import format_metrics

        run_campaign(spec_from_mapping(dict(BASE_SPEC, obs=True)), tmp_path / "c")
        text = format_metrics(tmp_path / "c")
        assert "2/2 runs covered" in text
        assert "harness.runs" in text and "harness.run_seconds" in text
        # falls back to merging ledger obs blocks when metrics.json is gone
        (tmp_path / "c" / METRICS_NAME).unlink()
        assert "harness.runs" in format_metrics(tmp_path / "c")

    def test_execute_run_legacy_one_arg_call(self, tmp_path):
        descriptor = spec_from_mapping(dict(BASE_SPEC)).expand()[0]
        record = RunRecord.from_dict(execute_run(descriptor.to_dict()))
        assert record.status == "ok" and record.obs is None


class TestSummaryPercentiles:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.95) == 0.0
        assert percentile([7], 0.5) == 7
        assert percentile(range(1, 101), 0.50) == 50
        assert percentile(range(1, 101), 0.95) == 95

    def test_summary_cells_carry_percentiles(self, tmp_path):
        result = run_campaign(spec_from_mapping(dict(BASE_SPEC)), tmp_path / "c")
        cell = next(iter(result.summary["cells"].values()))
        for key in ("p50_messages", "p95_messages", "p50_wall_time", "p95_wall_time"):
            assert key in cell
        assert cell["p95_messages"] >= cell["p50_messages"] > 0
        assert cell["p95_wall_time"] >= cell["p50_wall_time"] > 0
