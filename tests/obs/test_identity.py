"""The observability contract: obs-enabled runs are byte-identical.

Metrics and tracing read clocks and bump counters but never touch the
scheduler, channel RNG, or replay streams — so ``Trace.fingerprint()``
and every deterministic observable must match exactly between a run with
the whole subsystem on and the same run with it off, across the
batched/per-tuple × retraction/monotonic engine matrix, a 4-way sharded
coordinator, and serving crash recovery."""

import json

import pytest

from repro.bgp.generator import policy_path_vector_program
from repro.dn import EngineConfig, create_engine
from repro.obs import metrics, tracing
from repro.scenarios import generate_scenario
from repro.serving import RouteService, ServerConfig


@pytest.fixture(autouse=True)
def restore_obs_state():
    metrics_on, tracing_on = metrics.ENABLED, tracing.ENABLED
    yield
    metrics.registry().reset()
    tracing.tracer().reset()
    (metrics.enable if metrics_on else metrics.disable)()
    (tracing.enable if tracing_on else tracing.disable)()


def set_obs(on: bool) -> None:
    if on:
        metrics.enable()
        metrics.registry().reset()
        tracing.enable()
        tracing.tracer().reset()
    else:
        metrics.disable()
        tracing.disable()


def run_once(*, obs: bool, batch=True, retract=True, shards=1) -> dict:
    """One churn+loss run → every deterministic observable."""

    set_obs(obs)
    scenario = generate_scenario(
        "tree",
        size=12,
        seed=0,
        policy="gao_rexford",
        churn_events=2,
        churn_restore_delay=1.0,
        loss=0.01,
    )
    config = EngineConfig(
        seed=0,
        shards=shards,
        shard_transport="inline",
        batch_deltas=batch,
        retract_derivations=retract,
    )
    engine = create_engine(
        policy_path_vector_program(), scenario.topology, config=config
    )
    if scenario.churn is not None:
        scenario.churn.apply_to_engine(engine)
    try:
        trace = engine.run(until=15.0, extra_facts=scenario.policy_fact_list())
        return {
            "fingerprint": trace.fingerprint(),
            "tables": {
                pred: rows
                for pred, rows in engine.global_snapshot().items()
                if rows
            },
            "events": trace.events_processed,
            "seeds": dict(trace.seeds),
            "quiescent": trace.quiescent,
        }
    finally:
        engine.close()


class TestEngineIdentity:
    @pytest.mark.parametrize(
        "batch,retract", [(True, True), (True, False), (False, True), (False, False)]
    )
    def test_obs_on_matches_obs_off(self, batch, retract):
        plain = run_once(obs=False, batch=batch, retract=retract)
        observed = run_once(obs=True, batch=batch, retract=retract)
        # the instrumented run must actually have recorded something...
        recorded = metrics.registry().export()
        assert recorded["counters"].get("engine.events", 0) > 0
        assert tracing.tracer().export()["spans"]
        # ...while changing nothing observable
        assert observed == plain

    def test_sharded_obs_on_matches_obs_off(self):
        plain = run_once(obs=False, shards=4)
        observed = run_once(obs=True, shards=4)
        recorded = metrics.registry().export()
        assert recorded["counters"].get("shard.flush_waves", 0) > 0
        assert observed == plain


class TestServingIdentity:
    def test_recovery_with_tracing_matches_untraced_run(self, tmp_path):
        state_dir = tmp_path / "state"
        config = ServerConfig(
            family="tree", size=12, state_dir=str(state_dir), snapshot_every=0
        )
        set_obs(False)
        service = RouteService(config)
        try:
            service.apply_update("link_fail", {"src": 0, "dst": 1})
            service.apply_update("cost_change", {"src": 0, "dst": 2, "cost": 9.0})
            live_fp = service.engine.trace.fingerprint()
            live_seq = service.seq
        finally:
            service.close()

        trace_path = tmp_path / "daemon-trace.json"
        recovered = RouteService(
            ServerConfig(
                family="tree",
                size=12,
                state_dir=str(state_dir),
                snapshot_every=0,
                trace_out=str(trace_path),
            )
        )
        try:
            assert recovered.recovered_from != "boot"
            assert recovered.seq == live_seq
            assert recovered.engine.trace.fingerprint() == live_fp
        finally:
            recovered.close()
        # the traced daemon wrote its spans on close
        assert trace_path.exists()
        assert any(
            span["name"] == "serving.recovery"
            for span in json.loads(trace_path.read_text())["traceEvents"]
            if span.get("ph") == "X"
        )
