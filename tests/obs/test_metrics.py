"""Unit coverage of the :mod:`repro.obs.metrics` registry: the closed
name catalog, export/merge wire format, deterministic snapshots, and the
module-level enable gate."""

import pytest

from repro.obs import metrics


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test starts disabled with an empty registry and leaves no
    residue for the rest of the process (the flags are module-global)."""

    was_enabled = metrics.ENABLED
    metrics.disable()
    metrics.registry().reset()
    yield
    metrics.registry().reset()
    if was_enabled:
        metrics.enable()
    else:
        metrics.disable()


class TestRegistry:
    def test_unknown_counter_name_rejected(self):
        registry = metrics.MetricsRegistry()
        with pytest.raises(ValueError, match="unknown metric"):
            registry.inc("engine.bogus")

    def test_unknown_histogram_name_rejected(self):
        registry = metrics.MetricsRegistry()
        with pytest.raises(ValueError, match="unknown metric"):
            registry.observe("made.up", 1.0)

    def test_export_round_trips_through_merge(self):
        a = metrics.MetricsRegistry()
        a.inc("engine.events", 3)
        a.observe("engine.fixpoint_rounds", 2)
        b = metrics.MetricsRegistry()
        b.inc("engine.events", 4)
        b.observe("engine.fixpoint_rounds", 5)
        b.merge(a.export())
        snap = b.snapshot()
        assert snap["counters"]["engine.events"] == 7
        assert snap["histograms"]["engine.fixpoint_rounds"]["count"] == 2
        assert snap["histograms"]["engine.fixpoint_rounds"]["sum"] == 7

    def test_drain_empties_the_registry(self):
        registry = metrics.MetricsRegistry()
        registry.inc("shard.requests")
        exported = registry.drain()
        assert exported["counters"] == {"shard.requests": 1}
        assert registry.export() == {"counters": {}, "values": {}}

    def test_merge_ignores_unknown_names(self):
        registry = metrics.MetricsRegistry()
        registry.merge({"counters": {"not.a.metric": 9}, "values": {"nope": [1]}})
        assert registry.snapshot() == {"counters": {}, "histograms": {}}

    def test_snapshot_percentiles_nearest_rank(self):
        registry = metrics.MetricsRegistry()
        for value in range(1, 101):
            registry.observe("engine.delta_batch_size", value)
        hist = registry.snapshot()["histograms"]["engine.delta_batch_size"]
        assert hist["count"] == 100
        assert hist["min"] == 1 and hist["max"] == 100
        assert hist["p50"] == 50
        assert hist["p95"] == 95

    def test_snapshot_single_observation(self):
        registry = metrics.MetricsRegistry()
        registry.observe("serving.settle_seconds", 0.25)
        hist = registry.snapshot()["histograms"]["serving.settle_seconds"]
        assert hist == {
            "count": 1, "sum": 0.25, "min": 0.25, "max": 0.25,
            "p50": 0.25, "p95": 0.25,
        }


class TestModuleGate:
    def test_disabled_module_helpers_are_no_ops(self):
        metrics.inc("engine.events")
        metrics.observe("engine.fixpoint_rounds", 1)
        assert metrics.registry().export() == {"counters": {}, "values": {}}

    def test_enabled_module_helpers_record(self):
        metrics.enable()
        metrics.inc("engine.events", 2)
        metrics.observe("engine.fixpoint_rounds", 3)
        snap = metrics.registry().snapshot()
        assert snap["counters"]["engine.events"] == 2
        assert snap["histograms"]["engine.fixpoint_rounds"]["count"] == 1

    def test_every_metric_name_is_layer_dotted(self):
        for name in metrics.METRIC_NAMES:
            layer, _, stage = name.partition(".")
            assert layer in {"engine", "shard", "serving", "harness"} and stage
