"""Derivation-DAG well-formedness for ``explain``/``why_not`` — directly
on an engine and through the serving query verbs."""

import pytest

from repro.dn import DistributedEngine, EngineConfig
from repro.protocols.pathvector import path_vector_program
from repro.scenarios import generate_scenario
from repro.serving import ProtocolError, RouteService, ServerConfig


@pytest.fixture(scope="module")
def engine():
    scenario = generate_scenario("tree", size=10, seed=0)
    eng = DistributedEngine(
        path_vector_program(), scenario.topology, config=EngineConfig(seed=0)
    )
    eng.run(until=15.0, extra_facts=scenario.policy_fact_list())
    yield eng
    eng.close()


@pytest.fixture(scope="module")
def service():
    svc = RouteService(ServerConfig(family="tree", size=12, snapshot_every=0))
    yield svc
    svc.close()


def walk(node, visit):
    visit(node)
    for derivation in node.get("derivations", ()):
        for child in derivation["body"]:
            walk(child, visit)


def leaves(node):
    collected = []

    def visit(n):
        if not n.get("derivations"):
            collected.append(n)

    walk(node, visit)
    return collected


class TestExplain:
    def test_best_path_resolves_to_base_link_facts(self, engine):
        row = sorted(engine.rows("bestPath"))[0]
        dag = engine.explain("bestPath", row)
        assert dag["kind"] == "derived"
        assert dag["values"] == list(row)
        assert dag["derivations"]
        bottom = leaves(dag)
        assert bottom, "derivation DAG has no leaves"
        # every leaf is a base fact — and for plain path-vector the only
        # base predicate in a derivation is the injected link table
        assert {leaf["kind"] for leaf in bottom} == {"base"}
        assert {leaf["predicate"] for leaf in bottom} == {"link"}

    def test_every_node_well_formed(self, engine):
        row = sorted(engine.rows("bestPath"))[0]

        def check(node):
            assert set(node) >= {"predicate", "values", "kind"}
            assert node["kind"] in (
                "base", "derived", "absent", "underivable", "cycle", "depth_limit"
            )
            if node["kind"] == "derived":
                assert node["derivations"]
                for derivation in node["derivations"]:
                    assert derivation["rule"] and isinstance(derivation["body"], list)

        walk(engine.explain("bestPath", row), check)

    def test_absent_row_reports_absent(self, engine):
        dag = engine.explain("bestPath", (0, 1, (0, 99, 1), 123.0))
        assert dag["kind"] == "absent"

    def test_derivation_cap_truncates(self, engine):
        row = sorted(engine.rows("path"))[0]
        dag = engine.explain("path", row, max_derivations=0)
        assert dag["kind"] in ("derived", "underivable")
        if dag["kind"] == "underivable":
            assert dag.get("truncated", 0) >= 1

    def test_base_fact_explains_as_base(self, engine):
        row = sorted(engine.rows("link"))[0]
        assert engine.explain("link", row)["kind"] == "base"


class TestWhyNot:
    def test_wildcard_match_reports_present(self, engine):
        some = sorted(engine.rows("bestPath"))[0]
        report = engine.why_not("bestPath", (some[0], some[1], None, None))
        assert report["present"] and report["matching"]

    def test_missing_row_reports_rule_attempts(self, engine):
        report = engine.why_not("bestPath", (0, 0, None, None))
        assert not report["present"]
        assert report["rules"], "no candidate rules reported"
        for attempt in report["rules"]:
            if attempt["unifies"]:
                assert attempt["satisfied_prefix"] <= attempt["body_items"]

    def test_missing_base_fact_names_injection(self, engine):
        report = engine.why_not("link", (0, 999, None))
        assert not report["present"]
        assert "never injected" in report["reason"]


class TestServingVerbs:
    def test_explain_route_form(self, service):
        best = service.query("best_path", {"src": 0, "dst": 5})
        assert best["found"]
        answer = service.query("explain", {"src": 0, "dst": 5})
        assert answer["found"]
        dag = answer["explanation"]
        assert dag["predicate"] == "bestPath"
        assert {leaf["kind"] for leaf in leaves(dag)} == {"base"}

    def test_explain_explicit_predicate_form(self, service):
        row = service.query("table", {"predicate": "link"})["rows"][0]
        answer = service.query(
            "explain", {"predicate": "link", "values": row}
        )
        assert answer["found"] and answer["explanation"]["kind"] == "base"

    def test_explain_absent_route_points_at_why_not(self, service):
        service.apply_update("link_fail", {"src": 0, "dst": 1})
        try:
            missing = service.query("best_path", {"src": 0, "dst": 1})
            if not missing["found"]:
                with pytest.raises(ProtocolError, match="why_not"):
                    service.query("explain", {"src": 0, "dst": 1})
        finally:
            service.apply_update("link_restore", {"src": 0, "dst": 1})

    def test_why_not_route_form(self, service):
        service.apply_update("link_fail", {"src": 0, "dst": 1})
        try:
            answer = service.query("why_not", {"src": 0, "dst": 1})
            assert answer["seq"] == service.seq
            if service.query("best_path", {"src": 0, "dst": 1})["found"]:
                assert answer["present"]
            else:
                assert not answer["present"]
                assert answer["rules"]
        finally:
            service.apply_update("link_restore", {"src": 0, "dst": 1})

    def test_metrics_verb_snapshot_shape(self, service):
        service.query("routes", {})
        answer = service.query("metrics", {})
        assert answer["enabled"]
        counters = answer["metrics"]["counters"]
        assert counters.get("serving.queries", 0) >= 1
        assert "histograms" in answer["metrics"]

    def test_unknown_node_rejected(self, service):
        with pytest.raises(ProtocolError, match="unknown node"):
            service.query("why_not", {"src": 0, "dst": 999})
