"""Runtime invariant monitors: hook plumbing, incremental state mirroring,
first-violation timestamps, and agreement with post-hoc property checks."""

import pytest

from repro.dn.engine import DistributedEngine, EngineConfig
from repro.fvn.monitors import (
    MONITOR_KINDS,
    PATH_VECTOR_SCHEMA,
    POLICY_SCHEMA,
    CycleFreedomMonitor,
    SoftStateBoundMonitor,
    build_monitor,
    monitor_for_property,
    monitors_from_properties,
    posthoc_violations,
    schema_for_program,
    standard_monitors,
)
from repro.fvn.properties import standard_property_suite
from repro.bgp.generator import policy_path_vector_program
from repro.ndlog.parser import parse_program
from repro.protocols.pathvector import PATH_VECTOR_SOURCE, path_vector_program
from repro.scenarios import generate_scenario


def pv_engine(size=10, seed=3, config=None, monitors=None, family="tree"):
    scenario = generate_scenario(family, size=size, seed=seed)
    engine = DistributedEngine(
        path_vector_program(), scenario.topology, config=config or EngineConfig(seed=seed)
    )
    for monitor in monitors or ():
        engine.attach_monitor(monitor)
    return engine, scenario


def active_keys(monitor):
    return {(v.node, v.signature) for v in monitor.active_violations()}


class TestHookPlumbing:
    def test_clean_run_mirror_matches_engine_state(self):
        monitors = standard_monitors()
        engine, _ = pv_engine(monitors=monitors)
        trace = engine.run()
        engine.finalize_monitors()
        assert trace.quiescent
        for monitor in monitors:
            assert monitor.ok
            for node_id, node in engine.nodes.items():
                for predicate in monitor.watched:
                    assert monitor.mirror_rows(node_id, predicate) == set(
                        node.db.rows(predicate)
                    ), (monitor.name, node_id, predicate)

    @pytest.mark.parametrize("batch", [True, False])
    @pytest.mark.parametrize("retract", [True, False])
    def test_clean_convergence_has_no_violations_on_any_path(self, batch, retract):
        monitors = standard_monitors()
        engine, _ = pv_engine(
            config=EngineConfig(seed=1, batch_deltas=batch, retract_derivations=retract),
            monitors=monitors,
        )
        engine.run()
        engine.finalize_monitors()
        for monitor in monitors:
            assert monitor.ok, monitor.report()
            assert monitor.first_violation is None

    def test_seeds_recorded_in_trace(self):
        engine, _ = pv_engine(config=EngineConfig(seed=17))
        assert engine.trace.seeds == {"engine_config": 17, "channel": 17}

    def test_none_seed_records_effective_channel_seed(self):
        engine, _ = pv_engine(config=EngineConfig(seed=None))
        seeds = engine.trace.seeds
        assert seeds["engine_config"] is None
        assert isinstance(seeds["channel"], int)

    def test_none_seed_run_reproducible_from_recorded_seed(self):
        scenario = generate_scenario("tree", size=10, seed=2, loss=0.3)
        first = DistributedEngine(
            path_vector_program(), scenario.topology, config=EngineConfig(seed=None)
        )
        first.run()
        replay = DistributedEngine(
            path_vector_program(),
            scenario.topology,
            config=EngineConfig(seed=first.trace.seeds["channel"]),
        )
        replay.run()
        assert [
            (m.time, m.src, m.dst, m.predicate, m.values, m.delivered)
            for m in first.trace.messages
        ] == [
            (m.time, m.src, m.dst, m.predicate, m.values, m.delivered)
            for m in replay.trace.messages
        ]


class TestViolationsAndAgreement:
    def fail_first_link(self, engine, scenario):
        link = scenario.topology.up_links()[0]
        engine.seed_facts()
        engine.run(until=0.99)
        engine.schedule_link_failure(link.src, link.dst, at=1.0)
        engine.run()
        engine.finalize_monitors()

    def test_monotonic_failure_found_at_failure_time_and_agrees_posthoc(self):
        monitors = standard_monitors()
        engine, scenario = pv_engine(
            config=EngineConfig(seed=1, retract_derivations=False), monitors=monitors
        )
        self.fail_first_link(engine, scenario)
        validity = monitors[0]
        assert validity.name == "route_validity"
        assert validity.first_violation_time == pytest.approx(1.0)
        assert not validity.ok
        posthoc = posthoc_violations(engine)
        for monitor in monitors:
            assert active_keys(monitor) == {
                (v.node, v.signature) for v in posthoc[monitor.name]
            }, monitor.name

    def test_retraction_engine_heals_transients_and_agrees_posthoc(self):
        monitors = standard_monitors()
        engine, scenario = pv_engine(monitors=monitors)
        self.fail_first_link(engine, scenario)
        posthoc = posthoc_violations(engine)
        for monitor in monitors:
            # the reconvergence window may record transient violations, but
            # none persist — exactly like the post-hoc check on final state
            assert monitor.ok, monitor.report()
            assert posthoc[monitor.name] == []

    def test_cycle_monitor_flags_and_heals_cyclic_vectors(self):
        monitor = CycleFreedomMonitor(PATH_VECTOR_SCHEMA)
        engine, _ = pv_engine(monitors=[monitor])
        engine.run()
        bad = (1, 2, (1, 3, 1), 5.0)
        monitor.on_change(9.0, 1, "path", bad, "insert")
        monitor.on_settle(9.0, 1)
        assert monitor.first_violation_time == 9.0
        assert not monitor.ok
        monitor.on_change(9.5, 1, "path", bad, "delete")
        monitor.on_settle(9.5, 1)
        assert monitor.ok

    def test_soft_state_bound_monitor_catches_disabled_expiry(self):
        source = PATH_VECTOR_SOURCE.replace(
            "materialize(link, infinity, infinity, keys(1,2)).",
            "materialize(link, 2, infinity, keys(1,2)).",
        )
        program = parse_program(source, "pv_soft")
        scenario = generate_scenario("line", size=4, seed=0)

        healthy = DistributedEngine(
            program, scenario.topology, config=EngineConfig(seed=0)
        )
        monitor = SoftStateBoundMonitor()
        healthy.attach_monitor(monitor)
        healthy.run(until=6.0)
        healthy.finalize_monitors()
        assert monitor.ok, monitor.report()

        broken = DistributedEngine(
            parse_program(source, "pv_soft"),
            generate_scenario("line", size=4, seed=0).topology,
            # scans far apart: rows outlive lifetime + slack between scans
            config=EngineConfig(seed=0, expiry_scan_interval=50.0),
        )
        # pin the slack to the *intended* bound so the broken scan shows
        late = SoftStateBoundMonitor(slack=1.5)
        broken.attach_monitor(late)
        broken.run(until=10.0)
        broken.finalize_monitors()
        assert not late.ok
        assert late.active_violations()[0].detail.endswith("past its lifetime")


class TestPolicySchemaAndAdapters:
    def test_schema_detection(self):
        assert schema_for_program(path_vector_program()) is PATH_VECTOR_SCHEMA
        assert schema_for_program(policy_path_vector_program()) is POLICY_SCHEMA

    def test_policy_program_clean_run_no_violations(self):
        scenario = generate_scenario("tree", size=10, seed=4, policy="gao_rexford")
        engine = DistributedEngine(
            policy_path_vector_program(), scenario.topology, config=EngineConfig(seed=4)
        )
        monitors = standard_monitors(POLICY_SCHEMA)
        for monitor in monitors:
            engine.attach_monitor(monitor)
        trace = engine.run(extra_facts=scenario.policy_fact_list())
        engine.finalize_monitors()
        assert trace.quiescent
        for monitor in monitors:
            assert monitor.ok, monitor.report()
            assert monitor.first_violation is None

    def test_property_to_monitor_adapters(self):
        for prop in standard_property_suite():
            monitor = monitor_for_property(prop)
            assert monitor.name in MONITOR_KINDS
        monitors = monitors_from_properties(standard_property_suite())
        assert [m.name for m in monitors] == ["best_agreement", "route_validity"]
        with pytest.raises(ValueError, match="no runtime monitor"):
            monitor_for_property("fermatLastTheorem")

    def test_unknown_monitor_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown monitor kind"):
            build_monitor("vibes")
