"""Campaign spec loading, validation, and grid expansion."""

import json
from pathlib import Path

import pytest

from repro.harness import CampaignSpec, SpecError, load_spec, spec_from_mapping
from repro.harness.spec import RunDescriptor


class TestExpansion:
    def test_grid_size_is_the_axis_product(self):
        spec = CampaignSpec(
            name="grid",
            families=("tree", "waxman"),
            sizes=(10, 20),
            policies=("shortest_path", "none"),
            seeds=(0, 1, 2),
            churn_events=(0, 2),
            loss=(0.0, 0.05),
            engine=({}, {"batch_deltas": False}),
        )
        descriptors = spec.expand()
        assert spec.run_count == 2 * 2 * 2 * 3 * 2 * 2 * 2
        assert len(descriptors) == spec.run_count
        assert [d.index for d in descriptors] == list(range(spec.run_count))
        assert len({d.run_id for d in descriptors}) == spec.run_count

    def test_expansion_is_deterministic(self):
        def make():
            return CampaignSpec(
                name="det", families=("tree",), sizes=(12,), seeds=(0, 1)
            ).expand()

        assert make() == make()

    def test_none_policy_means_plain_path_vector(self):
        spec = CampaignSpec(name="p", policies=("none", "gao_rexford"))
        policies = {d.policy for d in spec.expand()}
        assert policies == {None, "gao_rexford"}

    def test_descriptor_round_trips_through_json(self):
        descriptor = CampaignSpec(
            name="rt",
            engine=({"retract_derivations": False},),
            soft_state={"link": 5.0},
        ).expand()[0]
        rebuilt = RunDescriptor.from_dict(json.loads(json.dumps(descriptor.to_dict())))
        assert rebuilt == descriptor
        config = rebuilt.engine_config()
        assert config.retract_derivations is False
        assert config.seed == descriptor.seed

    def test_engine_matrix_produces_distinct_configs(self):
        spec = CampaignSpec(
            name="engines", engine=({}, {"batch_deltas": False, "use_indexes": False})
        )
        configs = [d.engine_config() for d in spec.expand()]
        assert configs[0].batch_deltas is True
        assert configs[1].batch_deltas is False and configs[1].use_indexes is False


class TestValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(SpecError, match="unknown scenario family"):
            CampaignSpec(name="bad", families=("moebius",))

    def test_unknown_policy_rejected(self):
        with pytest.raises(SpecError, match="unknown policy"):
            CampaignSpec(name="bad", policies=("tit_for_tat",))

    def test_unknown_monitor_rejected(self):
        with pytest.raises(SpecError, match="unknown monitor"):
            CampaignSpec(name="bad", monitors=("route_validity", "vibes"))

    def test_unknown_engine_field_rejected(self):
        with pytest.raises(SpecError, match="unknown EngineConfig fields"):
            CampaignSpec(name="bad", engine=({"warp_speed": True},))

    def test_loss_must_be_probability(self):
        with pytest.raises(SpecError, match="probabilities"):
            CampaignSpec(name="bad", loss=(1.5,))

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(SpecError, match="unknown spec fields"):
            spec_from_mapping({"name": "bad", "colour": "blue"})


class TestLoading:
    def test_toml_and_json_load_identically(self, tmp_path):
        toml_path = tmp_path / "c.toml"
        toml_path.write_text(
            'name = "c"\nfamilies = ["tree"]\nsizes = [12]\n'
            'policies = ["shortest_path"]\nseeds = [0, 1]\nuntil = 5.0\n'
        )
        json_path = tmp_path / "c.json"
        json_path.write_text(
            json.dumps(
                {
                    "name": "c",
                    "families": ["tree"],
                    "sizes": [12],
                    "policies": ["shortest_path"],
                    "seeds": [0, 1],
                    "until": 5.0,
                }
            )
        )
        assert load_spec(toml_path).expand() == load_spec(json_path).expand()

    def test_scalar_axes_are_promoted(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text('name = "s"\nfamilies = "tree"\nsizes = 10\nseeds = 3\n')
        spec = load_spec(path)
        assert spec.families == ("tree",) and spec.sizes == (10,) and spec.seeds == (3,)

    def test_malformed_spec_files_raise_spec_errors(self, tmp_path):
        broken_toml = tmp_path / "broken.toml"
        broken_toml.write_text('name = "x\nfamilies = [')
        with pytest.raises(SpecError, match="malformed spec"):
            load_spec(broken_toml)
        broken_json = tmp_path / "broken.json"
        broken_json.write_text("{not json")
        with pytest.raises(SpecError, match="malformed spec"):
            load_spec(broken_json)
        bad_value = tmp_path / "bad.toml"
        bad_value.write_text('name = "x"\nsizes = ["ten"]\n')
        with pytest.raises(SpecError, match="invalid spec"):
            load_spec(bad_value)

    def test_missing_file_and_bad_suffix(self, tmp_path):
        with pytest.raises(SpecError, match="not found"):
            load_spec(tmp_path / "nope.toml")
        bad = tmp_path / "spec.yaml"
        bad.write_text("name: x")
        with pytest.raises(SpecError, match="unsupported spec format"):
            load_spec(bad)

    def test_example_smoke_spec_loads(self):
        example = Path(__file__).resolve().parents[2] / "examples" / "campaign_smoke.toml"
        spec = load_spec(example)
        assert spec.name == "campaign-smoke"
        assert spec.run_count >= 8
        assert all(p == "shortest_path" for p in spec.policies)


class TestShardsAxis:
    """The ``shards`` grid axis (merged into engine overrides)."""

    def test_default_axis_preserves_legacy_descriptors(self):
        spec = CampaignSpec(name="x", families=("tree",), sizes=(8,), seeds=(0, 1))
        descriptors = spec.expand()
        assert spec.shards == (1,)
        assert all("sh" not in d.run_id.split("-e")[1] for d in descriptors)
        assert all("shards" not in dict(d.engine) for d in descriptors)

    def test_shards_axis_merges_into_engine_overrides(self):
        spec = spec_from_mapping(
            {"name": "y", "families": ["tree"], "sizes": [8], "seeds": [0],
             "shards": [1, 4], "engine": [{}, {"batch_deltas": False}]}
        )
        descriptors = spec.expand()
        assert spec.run_count == len(descriptors) == 4
        shard_values = sorted(dict(d.engine).get("shards") for d in descriptors)
        assert shard_values == [1, 1, 4, 4]
        assert {d.run_id.split("-")[-2] for d in descriptors} == {"sh1", "sh4"}
        for d in descriptors:
            config = d.engine_config()
            assert config.shards == dict(d.engine)["shards"]

    def test_scalar_shards_becomes_axis(self):
        spec = spec_from_mapping(
            {"name": "z", "families": ["tree"], "sizes": [8], "seeds": [0], "shards": 2}
        )
        assert spec.shards == (2,)
        assert dict(spec.expand()[0].engine)["shards"] == 2

    def test_invalid_shards_rejected(self):
        with pytest.raises(SpecError, match="shards"):
            spec_from_mapping(
                {"name": "w", "families": ["tree"], "sizes": [8], "seeds": [0],
                 "shards": [0]}
            )

    def test_roundtrip_keeps_shards(self):
        spec = spec_from_mapping(
            {"name": "rt", "families": ["tree"], "sizes": [8], "seeds": [0],
             "shards": [1, 2]}
        )
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again.shards == (1, 2)
        assert [d.run_id for d in again.expand()] == [d.run_id for d in spec.expand()]
