"""Campaign crash containment: a worker process dying mid-campaign is
recorded as a crashed RunRecord in a complete, resumable ledger instead of
aborting the whole campaign with BrokenProcessPool."""

import json

import pytest

from repro.harness.records import LEDGER_NAME, RunRecord, read_ledger, summarize
from repro.harness.runner import CRASH_RUN_ENV, run_campaign
from repro.harness.spec import CampaignSpec


@pytest.fixture()
def spec():
    return CampaignSpec.from_dict(
        {
            "name": "crash-containment",
            "families": ["tree"],
            "sizes": [8],
            "seeds": [0, 1, 2, 3],
        }
    )


class TestPoolCrashContainment:
    def test_worker_death_contained_and_resumable(self, spec, tmp_path, monkeypatch):
        victim = spec.expand()[1].run_id
        monkeypatch.setenv(CRASH_RUN_ENV, victim)
        result = run_campaign(spec, tmp_path, workers=2)

        # the campaign completed with every run accounted for
        assert result.run_count == 4
        crashed = [r for r in result.records if r.status == "crashed"]
        assert [r.run_id for r in crashed] == [victim]
        assert "worker process died" in crashed[0].error
        assert result.summary["crashed"] == 1
        # the ledger is complete: one line per run, crashed one included
        ledger = read_ledger(tmp_path / LEDGER_NAME)
        assert set(ledger) == {d.run_id for d in spec.expand()}

        # resume re-executes only the crashed run, which now succeeds
        monkeypatch.delenv(CRASH_RUN_ENV)
        resumed = run_campaign(spec, tmp_path, workers=2)
        assert resumed.resumed == 3
        assert resumed.executed == 1
        assert all(r.status == "ok" for r in resumed.records)

    def test_inline_exception_contained(self, spec, tmp_path, monkeypatch):
        import repro.harness.runner as runner

        victim = spec.expand()[2].run_id
        real_execute = runner.execute_run

        def flaky(descriptor_data):
            if descriptor_data["run_id"] == victim:
                raise RuntimeError("synthetic in-run failure")
            return real_execute(descriptor_data)

        monkeypatch.setattr(runner, "execute_run", flaky)
        result = run_campaign(spec, tmp_path, workers=1)
        crashed = [r for r in result.records if r.status == "crashed"]
        assert [r.run_id for r in crashed] == [victim]
        assert "synthetic in-run failure" in crashed[0].error
        assert result.summary["crashed"] == 1


class TestRecordCompat:
    def test_old_ledger_lines_default_status_ok(self, tmp_path):
        record = RunRecord.crashed("r1", 0, {"family": "tree"}, "boom")
        old_style = record.to_dict()
        del old_style["status"]
        del old_style["error"]
        parsed = RunRecord.from_dict(old_style)
        assert parsed.status == "ok"
        assert parsed.error is None

    def test_crashed_record_round_trips_through_ledger(self, tmp_path):
        from repro.harness.records import append_ledger

        path = tmp_path / LEDGER_NAME
        record = RunRecord.crashed("r9", 3, {"family": "tree"}, "Traceback: ...")
        append_ledger(path, record)
        loaded = read_ledger(path)["r9"]
        assert loaded.status == "crashed"
        assert loaded.error == "Traceback: ..."
        assert loaded.monitors_ok is False

    def test_summarize_counts_crashed(self):
        params = {
            "family": "tree",
            "size": 8,
            "policy": None,
            "churn_events": 0,
            "loss": 0.0,
            "engine_index": 0,
        }
        ok = RunRecord.from_dict(
            json.loads(
                json.dumps(
                    {
                        **RunRecord.crashed("ok1", 0, params, "unused").to_dict(),
                        "status": "ok",
                        "error": None,
                        "quiescent": True,
                    }
                )
            )
        )
        bad = RunRecord.crashed("bad1", 1, params, "boom")
        summary = summarize([ok, bad])
        assert summary["runs"] == 2
        assert summary["crashed"] == 1
        assert summary["quiescent"] == 1
