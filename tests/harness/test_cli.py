"""CLI coverage: run/report/diff subcommands, --help, console script."""

import json
import os
import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

from repro.harness.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def write_spec(tmp_path, **overrides) -> Path:
    spec = {
        "name": "cli-test",
        "families": ["tree"],
        "sizes": [10],
        "policies": ["shortest_path"],
        "seeds": [0, 1],
        "until": 10.0,
        "max_events": 50000,
    }
    spec.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return path


class TestSubcommands:
    def test_run_then_report_then_diff(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out_a = tmp_path / "a"
        assert main(["run", str(spec), "--out", str(out_a), "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "campaign cli-test: 2 runs, 2 quiescent" in output
        assert "0 violations" in output

        assert main(["report", str(out_a)]) == 0
        assert "tree-10-shortest_path" in capsys.readouterr().out

        out_b = tmp_path / "b"
        assert main(["run", str(spec), "--out", str(out_b), "--quiet"]) == 0
        capsys.readouterr()
        assert main(["diff", str(out_a), str(out_b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_detects_tampering(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out_a, out_b = tmp_path / "a", tmp_path / "b"
        main(["run", str(spec), "--out", str(out_a), "--quiet"])
        main(["run", str(spec), "--out", str(out_b), "--quiet"])
        results = out_b / "results.jsonl"
        lines = results.read_text().splitlines()
        tampered = json.loads(lines[0])
        tampered["messages"] += 1
        lines[0] = json.dumps(tampered, sort_keys=True, separators=(",", ":"))
        results.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["diff", str(out_a), str(out_b)]) == 1
        assert "messages" in capsys.readouterr().out

    def test_fail_on_violations_exits_2(self, tmp_path, capsys):
        spec = write_spec(
            tmp_path,
            policies=["none"],
            churn_events=[2],
            churn_restore_delay=None,
            engine=[{"retract_derivations": False}],
        )
        code = main(
            ["run", str(spec), "--out", str(tmp_path / "out"), "--quiet",
             "--fail-on-violations"]
        )
        assert code == 2
        assert "invariant violations" in capsys.readouterr().err

    def test_progress_lines_shown_by_default(self, tmp_path, capsys):
        spec = write_spec(tmp_path, seeds=[0])
        main(["run", str(spec), "--out", str(tmp_path / "out")])
        assert "[1/1]" in capsys.readouterr().out

    def test_bad_spec_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('name = "x"\nfamilies = ["moebius"]\n')
        assert main(["run", str(bad), "--out", str(tmp_path / "out")]) == 1
        assert "unknown scenario family" in capsys.readouterr().err

    def test_report_on_missing_dir_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1
        assert "not a campaign directory" in capsys.readouterr().err


class TestEntryPoints:
    @pytest.mark.parametrize("args", [["--help"], ["run", "--help"]])
    def test_module_help(self, args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.harness", *args],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0
        assert "fvn-campaign" in proc.stdout
        if args == ["--help"]:
            for sub in ("run", "report", "diff"):
                assert sub in proc.stdout

    def test_inprocess_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "campaign" in capsys.readouterr().out

    def test_console_script_declared_and_importable(self):
        pyproject = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        target = pyproject["project"]["scripts"]["fvn-campaign"]
        module_name, func_name = target.split(":")
        module = __import__(module_name, fromlist=[func_name])
        assert callable(getattr(module, func_name))
