"""Static obligation discharge wired into the campaign harness.

The acceptance contract: with ``static_proofs = true`` monotone runs (no
churn, no loss) skip their statically-proven monitors, every run's ledger
record carries replay-checkable proof provenance, and ``results.jsonl``
is byte-identical to the fully runtime-monitored campaign.  Runs with
deletions keep runtime monitoring — reconvergence can transiently flag
invariants that provably hold at settled states, and those transient
observations must not be lost.
"""

import json

from repro.harness import CampaignSpec, execute_run, run_campaign
from repro.harness.records import LEDGER_NAME, RESULTS_NAME

PROVEN = ["best_agreement", "route_validity"]


def spec(**overrides) -> CampaignSpec:
    base = dict(
        name="static-unit",
        families=("tree",),
        sizes=(12,),
        policies=("none",),
        seeds=(0, 1),
        churn_events=(0, 2),
        loss=(0.0,),
        until=20.0,
        max_events=100_000,
        monitors=("route_validity", "best_agreement", "cycle_freedom"),
    )
    base.update(overrides)
    return CampaignSpec(**base)


def monotone_descriptor():
    return spec(churn_events=(0,), seeds=(0,)).expand()[0]


class TestExecuteRunWithProofs:
    def test_monotone_run_skips_proven_monitors(self):
        descriptor = monotone_descriptor()
        record = execute_run(descriptor.to_dict(), True)
        provenance = record["static_proofs"]
        assert provenance["proven_monitors"] == PROVEN
        assert provenance["skipped_monitors"] == PROVEN
        # skipped monitors surface the canonical clean report, in spec order
        assert [m["monitor"] for m in record["monitors"]] == list(descriptor.monitors)
        reports = {m["monitor"]: m for m in record["monitors"]}
        for kind in PROVEN:
            assert reports[kind]["violations"] == 0
            assert reports[kind]["examples"] == []
        assert record["monitors_ok"]

    def test_churn_run_keeps_runtime_monitors(self):
        descriptor = spec(churn_events=(2,), seeds=(0,)).expand()[0]
        record = execute_run(descriptor.to_dict(), True)
        provenance = record["static_proofs"]
        # proofs are recorded, but deletions disable the skip
        assert provenance["proven_monitors"] == PROVEN
        assert provenance["skipped_monitors"] == []

    def test_records_identical_to_dynamic_modulo_provenance(self):
        from repro.harness.records import RunRecord

        for descriptor in spec(seeds=(0,)).expand():
            dynamic = RunRecord.from_dict(execute_run(descriptor.to_dict()))
            static = RunRecord.from_dict(execute_run(descriptor.to_dict(), True))
            assert dynamic.static_proofs is None
            assert static.static_proofs is not None
            assert dynamic.deterministic_dict() == static.deterministic_dict()

    def test_proof_scripts_in_ledger_replay(self):
        from repro.ndlog.analysis.discharge import replay_proof
        from repro.protocols import path_vector_program

        record = execute_run(monotone_descriptor().to_dict(), True)
        program = path_vector_program()
        replayed = 0
        for proof in record["static_proofs"]["proofs"]:
            if proof["proved"]:
                assert replay_proof(program, proof["property"], proof["script"])
                replayed += 1
        assert replayed >= 1


class TestCampaignByteIdentity:
    def test_results_byte_identical_and_ledger_carries_proofs(self, tmp_path):
        dynamic_dir = tmp_path / "dynamic"
        static_dir = tmp_path / "static"
        run_campaign(spec(static_proofs=False), dynamic_dir)
        run_campaign(spec(static_proofs=True), static_dir)

        dynamic_bytes = (dynamic_dir / RESULTS_NAME).read_bytes()
        static_bytes = (static_dir / RESULTS_NAME).read_bytes()
        assert dynamic_bytes == static_bytes

        static_records = [
            json.loads(line)
            for line in (static_dir / LEDGER_NAME).read_text().splitlines()
        ]
        assert static_records
        for record in static_records:
            provenance = record["static_proofs"]
            assert provenance["proven_monitors"] == PROVEN
            monotone = record["params"]["churn_events"] == 0
            assert provenance["skipped_monitors"] == (PROVEN if monotone else [])
        assert any(r["static_proofs"]["skipped_monitors"] for r in static_records)

        dynamic_records = [
            json.loads(line)
            for line in (dynamic_dir / LEDGER_NAME).read_text().splitlines()
        ]
        assert all(r["static_proofs"] is None for r in dynamic_records)

    def test_spec_round_trips_static_proofs(self):
        loaded = CampaignSpec.from_dict(spec(static_proofs=True).to_dict())
        assert loaded.static_proofs is True
        assert spec().static_proofs is False
