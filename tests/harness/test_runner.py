"""Campaign runner: determinism, resumability, multi-process equivalence."""

import json

from repro.harness import (
    CampaignSpec,
    RunRecord,
    diff_campaigns,
    execute_run,
    run_campaign,
)
from repro.harness.records import LEDGER_NAME, RESULTS_NAME, SUMMARY_NAME


def small_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="unit",
        families=("tree",),
        sizes=(10,),
        policies=("none",),
        seeds=(0, 1, 2, 3),
        churn_events=(0, 2),
        loss=(0.0,),
        until=15.0,
        max_events=50_000,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestExecuteRun:
    def test_record_contents_and_seeds(self):
        descriptor = small_spec().expand()[0]
        record = RunRecord.from_dict(execute_run(descriptor.to_dict()))
        assert record.run_id == descriptor.run_id
        assert record.quiescent
        assert record.route_count == 10 * 9
        assert record.stale_routes == 0 and record.missing_routes == 0
        assert record.seeds == {
            "engine_config": 0,
            "channel": 0,
            "scenario": 0,
        }
        assert [m["monitor"] for m in record.monitors] == [
            "route_validity",
            "best_agreement",
            "cycle_freedom",
            "soft_state_bounds",
        ]
        assert record.monitors_ok
        assert record.wall_time > 0

    def test_execute_run_is_deterministic_modulo_wall_time(self):
        descriptor = small_spec(churn_events=(2,), loss=(0.1,)).expand()[1]
        a = RunRecord.from_dict(execute_run(descriptor.to_dict()))
        b = RunRecord.from_dict(execute_run(descriptor.to_dict()))
        assert a.deterministic_dict() == b.deterministic_dict()

    def test_policy_runs_use_policy_program(self):
        descriptor = small_spec(
            policies=("shortest_path",), seeds=(0,), churn_events=(0,)
        ).expand()[0]
        record = RunRecord.from_dict(execute_run(descriptor.to_dict()))
        assert record.quiescent and record.route_count == 10 * 9

    def test_soft_state_override_reaches_the_program(self):
        from repro.harness import build_program
        from repro.harness.spec import RunDescriptor

        descriptor = small_spec(soft_state={"link": 5.0}).expand()[0]
        program = build_program(RunDescriptor.from_dict(descriptor.to_dict()))
        assert program.materialized["link"].lifetime == 5.0
        assert program.materialized["path"].lifetime == float("inf")


class TestCampaigns:
    def test_campaign_writes_all_artifacts(self, tmp_path):
        spec = small_spec(seeds=(0, 1), churn_events=(0,))
        result = run_campaign(spec, tmp_path / "out")
        assert result.run_count == 2 and result.executed == 2 and result.resumed == 0
        for name in (LEDGER_NAME, RESULTS_NAME, SUMMARY_NAME, "spec.json"):
            assert (tmp_path / "out" / name).exists()
        summary = json.loads((tmp_path / "out" / SUMMARY_NAME).read_text())
        assert summary["runs"] == 2 and summary["quiescent"] == 2

    def test_results_are_byte_identical_across_reruns(self, tmp_path):
        spec = small_spec(seeds=(0, 1), churn_events=(2,), loss=(0.05,))
        run_campaign(spec, tmp_path / "a")
        run_campaign(spec, tmp_path / "b")
        assert (tmp_path / "a" / RESULTS_NAME).read_bytes() == (
            tmp_path / "b" / RESULTS_NAME
        ).read_bytes()
        assert diff_campaigns(tmp_path / "a", tmp_path / "b") == []

    def test_multiprocess_results_equal_single_process(self, tmp_path):
        spec = small_spec(seeds=(0, 1, 2), churn_events=(0,))
        run_campaign(spec, tmp_path / "seq", workers=1)
        run_campaign(spec, tmp_path / "par", workers=2)
        assert (tmp_path / "seq" / RESULTS_NAME).read_bytes() == (
            tmp_path / "par" / RESULTS_NAME
        ).read_bytes()

    def test_killed_campaign_resumes_where_it_stopped(self, tmp_path):
        spec = small_spec(churn_events=(0,))  # 4 runs
        full = run_campaign(spec, tmp_path / "full")
        # simulate a kill after two runs: keep a truncated ledger only
        out = tmp_path / "resumed"
        out.mkdir()
        ledger_lines = (tmp_path / "full" / LEDGER_NAME).read_text().splitlines()
        (out / LEDGER_NAME).write_text("\n".join(ledger_lines[:2]) + "\n")
        resumed = run_campaign(spec, out)
        assert resumed.resumed == 2 and resumed.executed == 2
        assert (out / RESULTS_NAME).read_bytes() == (
            tmp_path / "full" / RESULTS_NAME
        ).read_bytes()
        assert full.summary["runs"] == resumed.summary["runs"] == 4

    def test_torn_ledger_line_is_reexecuted(self, tmp_path):
        spec = small_spec(seeds=(0, 1), churn_events=(0,))
        run_campaign(spec, tmp_path / "out")
        ledger = tmp_path / "out" / LEDGER_NAME
        lines = ledger.read_text().splitlines()
        # a hard kill mid-write leaves a torn trailing line
        ledger.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        resumed = run_campaign(spec, tmp_path / "out")
        assert resumed.resumed == 1 and resumed.executed == 1
        assert len(resumed.records) == 2

    def test_fresh_discards_previous_artifacts(self, tmp_path):
        spec = small_spec(seeds=(0,), churn_events=(0,))
        run_campaign(spec, tmp_path / "out")
        result = run_campaign(spec, tmp_path / "out", resume=False)
        assert result.resumed == 0 and result.executed == 1

    def test_spec_edits_invalidate_matching_run_ids(self, tmp_path):
        # run_ids encode only the grid coordinates; editing a shared field
        # like the sim-time budget must re-execute, not resume stale results
        out = tmp_path / "out"
        first = run_campaign(small_spec(seeds=(0, 1), churn_events=(0,)), out)
        assert first.executed == 2
        edited = run_campaign(
            small_spec(seeds=(0, 1), churn_events=(0,), until=12.0), out
        )
        assert edited.resumed == 0 and edited.executed == 2
        # unchanged spec still resumes everything
        again = run_campaign(
            small_spec(seeds=(0, 1), churn_events=(0,), until=12.0), out
        )
        assert again.resumed == 2 and again.executed == 0

    def test_stale_ledger_entries_from_other_specs_are_ignored(self, tmp_path):
        spec = small_spec(seeds=(0,), churn_events=(0,))
        out = tmp_path / "out"
        out.mkdir()
        bogus = {"run_id": "9999-other", "index": 9999}
        (out / LEDGER_NAME).write_text(json.dumps(bogus) + "\n")
        result = run_campaign(spec, out)
        assert result.executed == 1 and result.resumed == 0
        assert [r.run_id for r in result.records] == [spec.expand()[0].run_id]

    def test_lossy_churned_campaign_retraction_vs_monotonic(self, tmp_path):
        """The headline contrast, at campaign scale: with retraction the
        final states match the fresh fixpoint (no stale routes); monotonic
        mode accumulates stale state that the monitors flag."""

        spec = small_spec(
            seeds=(0, 1),
            churn_events=(2,),
            churn_restore_delay=None,  # failures are permanent: staleness shows
            engine=({}, {"retract_derivations": False}),
        )
        result = run_campaign(spec, tmp_path / "out")
        by_engine = {}
        for record in result.records:
            by_engine.setdefault(record.params["engine_index"], []).append(record)
        assert all(r.stale_routes == 0 for r in by_engine[0])
        assert all(r.monitors_ok for r in by_engine[0])
        assert any(r.stale_routes > 0 for r in by_engine[1])
        assert any(not r.monitors_ok for r in by_engine[1])
        # runtime monitors saw the violation when churn struck, not at the end
        flagged = [r for r in by_engine[1] if not r.monitors_ok]
        assert all(
            r.first_violation_time is not None
            and r.first_violation_time < r.finished_at
            for r in flagged
        )
