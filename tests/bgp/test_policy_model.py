"""Unit tests for BGP policies, the component model, and NDlog generation."""


from repro.bgp.generator import (
    bgp_component_program,
    policy_facts,
    policy_path_vector_program,
)
from repro.bgp.model import (
    ComponentBGPSimulator,
    bgp_model,
    peer_transformation,
    policy_registry,
)
from repro.bgp.policy import (
    PolicyRule,
    PolicyTable,
    Route,
    best_route,
    disagree_policies,
    gao_rexford_policies,
    prefer_route,
    shortest_path_policies,
)
from repro.dn.engine import DistributedEngine
from repro.dn.network import Topology
from repro.fvn.logic_to_ndlog import check_translation_equivalence


class TestRoutesAndPolicies:
    def test_prefer_route_orders_by_local_pref_then_length(self):
        short = Route("d", ("a", "d"), local_pref=100)
        long_preferred = Route("d", ("a", "b", "c", "d"), local_pref=200)
        assert prefer_route(short, long_preferred) == long_preferred
        same_pref_longer = Route("d", ("a", "b", "d"), local_pref=100)
        assert prefer_route(short, same_pref_longer) == short
        assert best_route([short, long_preferred, same_pref_longer]) == long_preferred

    def test_policy_rule_matching_and_actions(self):
        route = Route("d", ("w", "d"), local_pref=100)
        deny = PolicyRule("deny", match_destination="d")
        assert deny.apply(route, "me") is None
        other = PolicyRule("deny", match_destination="x")
        assert other.apply(route, "me") == route
        setter = PolicyRule("set_local_pref", local_pref=250)
        assert setter.apply(route, "me").local_pref == 250

    def test_export_suppresses_loops_and_denies(self):
        table = PolicyTable()
        table.add_export("w", "u", PolicyRule("deny", match_destination="secret"))
        assert table.apply_export("w", "u", Route("secret", ("w", "secret"))) is None
        assert table.apply_export("w", "u", Route("d", ("w", "u", "d"))) is None
        assert table.apply_export("w", "u", Route("d", ("w", "d"))) is not None

    def test_import_loop_prevention(self):
        table = PolicyTable()
        assert table.apply_import("u", "w", Route("d", ("w", "u", "d"))) is None

    def test_policy_fact_generation(self):
        facts = policy_facts(disagree_policies(), [0, 1, 2])
        prefs = {(f[1][0], f[1][1]): f[1][2] for f in facts if f[0] == "importPref"}
        # node 1 prefers routes learned from 2 (rank 0) over those from 0
        assert prefs[(1, 2)] < prefs[(1, 0)]
        assert prefs[(2, 1)] < prefs[(2, 0)]

    def test_gao_rexford_prefers_customers(self):
        table = gao_rexford_policies([("c1", "p1")])
        imported = table.apply_import("p1", "c1", Route("d", ("c1", "d")))
        assert imported.local_pref == 300
        upstream = table.apply_import("c1", "p1", Route("d", ("p1", "d")))
        assert upstream.local_pref == 100


class TestComponentModel:
    def test_pipeline_transforms_single_announcement(self):
        model = bgp_model(shortest_path_policies())
        outputs = model.run(r0=(1, 0, 0, (0,), 100, 0.0, 7))
        best = outputs["bestRoute.best"]
        assert best[0] == 1  # receiver
        assert best[2] == (1, 0)  # receiver prepended
        assert best[5] == 7  # time preserved

    def test_export_deny_stops_the_pipeline(self):
        table = PolicyTable()
        table.add_export(0, 1, PolicyRule("deny"))
        model = bgp_model(table)
        assert model.run(r0=(1, 0, 0, (0,), 100, 0.0, 1)) == {}

    def test_import_local_pref_applied(self):
        model = bgp_model(disagree_policies())
        outputs = model.run(r0=(1, 2, 0, (2, 0), 100, 1.0, 1))
        assert outputs["bestRoute.best"][3] == 200

    def test_peer_transformation_composite_structure(self):
        pt = peer_transformation(shortest_path_policies())
        assert set(pt.components) == {"export", "pvt", "import_"}
        assert len(pt.wires) == 2
        ordered = [c.name for c in pt.topological_order()]
        assert ordered.index("export") < ordered.index("pvt") < ordered.index("import_")

    def test_component_theory_has_definitions(self):
        theory = bgp_model(shortest_path_policies()).theory()
        assert set(theory.definitions.predicates()) >= {"export", "pvt", "import_", "bestRoute", "bgp"}

    def test_synchronous_simulator_shortest_path_converges(self):
        sim = ComponentBGPSimulator(shortest_path_policies(), [(0, 1), (1, 2), (0, 2)], origin=0)
        rounds, converged = sim.run_to_fixpoint()
        assert converged
        assert sim.selected[2].as_path == (2, 0)

    def test_synchronous_simulator_disagree_oscillates(self):
        sim = ComponentBGPSimulator(disagree_policies(), [(0, 1), (0, 2), (1, 2)], origin=0)
        rounds, converged = sim.run_to_fixpoint(max_rounds=25)
        assert not converged


class TestGeneratedNDlog:
    def test_component_translation_equivalence(self):
        policies = disagree_policies()
        model = bgp_model(policies)
        result = check_translation_equivalence(
            model,
            {"r0": (1, 0, 0, (0,), 100, 0.0, 1)},
            functions=policy_registry(policies),
        )
        assert result.matches, result.detail

    def test_component_program_structure(self):
        program = bgp_component_program()
        assert {r.head.predicate for r in program.rules} == {
            "export_out_r1",
            "pvt_out_r2",
            "import__out_r3",
            "bestRoute_out_best",
        }

    def test_policy_path_vector_runs_distributed(self):
        program = policy_path_vector_program()
        topology = Topology.from_edges([(0, 1, 1), (0, 2, 1), (1, 2, 1)])
        engine = DistributedEngine(program, topology)
        trace = engine.run(extra_facts=policy_facts(shortest_path_policies(), [0, 1, 2]))
        assert trace.quiescent
        best = {(r[0], r[1]): r for r in engine.rows("bestRoute")}
        assert best[(1, 0)][2] == (1, 0)  # direct shortest path chosen
        assert trace.message_count > 0

    def test_policy_path_vector_respects_export_deny(self):
        policies = PolicyTable()
        policies.add_export(0, 1, PolicyRule("deny", match_destination=2))
        program = policy_path_vector_program()
        topology = Topology.from_edges([(0, 1, 1), (0, 2, 1)])
        engine = DistributedEngine(program, topology)
        engine.run(extra_facts=policy_facts(policies, [0, 1, 2]))
        routes_at_1 = {r[1] for r in engine.rows("bestRoute", 1)}
        assert 2 not in routes_at_1  # node 0 never exported the route to 2
