"""Unit tests for the Stable Paths Problem gadgets and SPVP dynamics."""

import pytest

from repro.bgp.simulation import SPVPSimulator
from repro.bgp.spp import (
    EPSILON,
    SPPInstance,
    bad_gadget,
    disagree,
    good_gadget,
    shortest_path_instance,
)


class TestSPPInstances:
    def test_permitted_paths_validated(self):
        with pytest.raises(ValueError):
            SPPInstance(origin=0, permitted={1: ((2, 0),)})

    def test_rank_and_preference(self):
        inst = disagree()
        assert inst.rank(1, (1, 2, 0)) == 0
        assert inst.rank(1, (1, 0)) == 1
        assert inst.rank(1, EPSILON) == 2
        assert inst.prefers(1, (1, 2, 0), (1, 0))

    def test_disagree_has_two_stable_solutions(self):
        solutions = disagree().stable_solutions()
        assert len(solutions) == 2
        assignments = {tuple(sorted(s.items())) for s in solutions}
        assert (((1, (1, 2, 0)), (2, (2, 0)))) in assignments
        assert (((1, (1, 0)), (2, (2, 1, 0)))) in assignments

    def test_good_gadget_unique_solution(self):
        inst = good_gadget()
        assert inst.has_unique_solution()
        (solution,) = inst.stable_solutions()
        assert solution[1] == (1, 0)

    def test_bad_gadget_has_no_solution(self):
        assert bad_gadget().stable_solutions() == []
        assert not bad_gadget().is_solvable

    def test_best_consistent_path_depends_on_neighbours(self):
        inst = disagree()
        assert inst.best_consistent_path(1, {2: (2, 0)}) == (1, 2, 0)
        assert inst.best_consistent_path(1, {2: EPSILON}) == (1, 0)

    def test_shortest_path_instance_is_safe(self):
        inst = shortest_path_instance([(0, 1), (1, 2), (0, 2)], origin=0)
        assert inst.is_solvable
        solution = inst.stable_solutions()[0]
        assert solution[1] == (1, 0)
        assert solution[2] == (2, 0)

    def test_edges_extracted_from_permitted_paths(self):
        assert (1, 2) in disagree().edges()


class TestSPVP:
    def test_good_gadget_converges_under_all_schedules(self):
        for schedule in ("random", "round_robin", "simultaneous"):
            result = SPVPSimulator(good_gadget(), seed=0).run(schedule=schedule)
            assert result.converged, schedule
            assert not result.oscillated

    def test_disagree_converges_under_fair_random_schedules(self):
        outcomes = set()
        for seed in range(6):
            result = SPVPSimulator(disagree(), seed=seed).run(schedule="random")
            assert result.converged
            outcomes.add(tuple(sorted(result.final_assignment.items())))
        assert len(outcomes) >= 1  # lands in one of the two stable solutions

    def test_disagree_oscillates_under_simultaneous_activation(self):
        result = SPVPSimulator(disagree(), seed=0).run(schedule="simultaneous", max_activations=500)
        assert not result.converged
        assert result.oscillated

    def test_bad_gadget_never_converges(self):
        for schedule in ("random", "simultaneous"):
            result = SPVPSimulator(bad_gadget(), seed=1).run(
                schedule=schedule, max_activations=600
            )
            assert not result.converged

    def test_final_assignment_of_converged_run_is_stable(self):
        result = SPVPSimulator(disagree(), seed=3).run(schedule="random")
        assert disagree().is_stable(result.final_assignment)

    def test_convergence_profile_statistics(self):
        profile = SPVPSimulator(disagree()).convergence_profile(runs=10, schedule="random")
        assert profile["convergence_rate"] == 1.0
        assert profile["mean_activations"] >= 1
        assert 1 <= profile["distinct_stable_outcomes"] <= 2
        bad_profile = SPVPSimulator(bad_gadget()).convergence_profile(runs=5, max_activations=400)
        assert bad_profile["convergence_rate"] == 0.0
