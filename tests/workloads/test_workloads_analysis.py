"""Unit tests for workload generators and analysis metrics."""

import networkx as nx
import pytest

from repro.analysis import ConvergenceMetrics, ProofEffort, mean, render_table, speedup
from repro.dn.engine import DistributedEngine
from repro.dn.trace import Trace
from repro.logic.prover import ProofResult, ProofStep
from repro.logic.formulas import atom
from repro.ndlog.parser import parse_program
from repro.protocols.pathvector import PATH_VECTOR_SOURCE
from repro.workloads import (
    WorkloadScript,
    as_hierarchy_topology,
    grid_topology,
    line_topology,
    periodic_refresh_workload,
    random_failure_workload,
    random_topology,
    ring_topology,
    star_topology,
    to_edge_list,
)


class TestTopologies:
    def test_shapes(self):
        assert line_topology(4).node_count == 4
        assert len(line_topology(4).up_links()) == 6
        assert len(ring_topology(4).up_links()) == 8
        assert star_topology(5).node_count == 5
        assert grid_topology(2, 3).node_count == 6

    def test_random_topology_is_connected_and_deterministic(self):
        topo1 = random_topology(10, seed=7)
        topo2 = random_topology(10, seed=7)
        assert to_edge_list(topo1) == to_edge_list(topo2)
        assert nx.is_connected(topo1.to_networkx().to_undirected())

    def test_as_hierarchy(self):
        topo, customer_provider = as_hierarchy_topology((2, 3), seed=1)
        assert topo.node_count == 5
        assert customer_provider
        assert all(c.startswith("t1") and p.startswith("t0") for c, p in customer_provider)


class TestWorkloadScripts:
    def test_events_sorted_by_time(self):
        script = WorkloadScript().fail_link(1, 2, at=5.0)
        script.set_cost(2, 3, 9, at=1.0)
        assert [e.at for e in script.events] == [1.0, 5.0]
        assert len(script) == 2

    def test_random_failure_workload_distinct_links(self):
        topo = ring_topology(6)
        script = random_failure_workload(topo, failures=3, seed=2)
        assert len(script) == 3
        pairs = {frozenset((e.src, e.dst)) for e in script.events}
        assert len(pairs) == 3

    def test_periodic_refresh(self):
        script = periodic_refresh_workload([("hb", ("a", "b"))], period=2.0, repetitions=3)
        assert [e.at for e in script.events] == [0.0, 2.0, 4.0]

    def test_apply_to_engine_schedules_events(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        engine = DistributedEngine(program, ring_topology(4))
        engine.seed_facts()
        script = WorkloadScript().fail_link(0, 1, at=1.0)
        script.apply_to_engine(engine)
        trace = engine.run()
        assert any(c.kind == "delete" for c in trace.state_changes)


class TestAnalysis:
    def test_convergence_metrics_from_trace(self):
        trace = Trace()
        trace.record_change(0.2, "a", "bestPath", ("a", "b"))
        trace.record_message(0.1, "a", "b", "path", ("a", "b"))
        trace.quiescent = True
        metrics = ConvergenceMetrics.from_trace(trace)
        assert metrics.converged and metrics.messages == 1
        assert metrics.convergence_time == 0.2

    def test_proof_effort_accounting(self):
        effort = ProofEffort()
        effort.add(
            ProofResult(
                "a", atom("p"), True,
                steps=[ProofStep("skosimp"), ProofStep("assert", automated=True)],
                elapsed_seconds=0.01,
            )
        )
        effort.add(
            ProofResult(
                "b", atom("q"), True,
                steps=[ProofStep("grind", automated=True)],
                elapsed_seconds=0.02,
            )
        )
        assert effort.proved == 2
        assert effort.total_steps == 3
        assert effort.automated_fraction == pytest.approx(2 / 3)
        assert "2/2 proved" in effort.summary()

    def test_table_rendering_and_helpers(self):
        table = render_table(["name", "value"], [["x", 1], ["longer", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0
        assert speedup(10, 2) == 5
        assert speedup(1, 0) == float("inf")
