"""Unit tests for inductive definitions."""

import pytest

from repro.logic.formulas import Exists, Or, atom, conj, eq
from repro.logic.inductive import Clause, DefinitionTable, InductiveDefinition
from repro.logic.terms import Var, func


def path_definition() -> InductiveDefinition:
    S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
    Z, C1, C2, P2 = Var("Z"), Var("C1"), Var("C2"), Var("P2")
    return InductiveDefinition(
        "path",
        (S, D, P, C),
        (
            Clause((), conj(atom("link", S, D, C), eq(P, func("f_init", S, D)))),
            Clause(
                (Z, C1, C2, P2),
                conj(
                    atom("link", S, Z, C1),
                    atom("path", Z, D, P2, C2),
                    eq(C, func("+", C1, C2)),
                ),
            ),
        ),
    )


class TestInductiveDefinition:
    def test_arity_and_recursion_flags(self):
        d = path_definition()
        assert d.arity == 4
        assert d.is_recursive
        simple = InductiveDefinition("q", (Var("X"),), (Clause((), atom("p", "X")),))
        assert not simple.is_recursive

    def test_definition_formula_is_closed_iff(self):
        f = path_definition().definition_formula()
        assert f.free_vars() == frozenset()

    def test_unfold_substitutes_head_args(self):
        d = path_definition()
        unfolded = d.unfold(atom("path", "a", "b", "P0", 5))
        assert isinstance(unfolded, Or)
        base = unfolded.parts[0]
        assert atom("link", "a", "b", 5) in list(base.subformulas())

    def test_unfold_freshens_existentials_to_avoid_capture(self):
        d = path_definition()
        # argument names collide with clause existentials
        unfolded = d.unfold(atom("path", "Z", "D", "P2", "C2"))
        recursive = unfolded.parts[1]
        assert isinstance(recursive, Exists)
        assert Var("Z") not in recursive.vars  # the bound Z must be renamed

    def test_unfold_rejects_other_predicates(self):
        d = path_definition()
        assert d.unfold(atom("link", "a", "b", 1)) is None
        assert d.unfold(atom("path", "a", "b")) is None

    def test_clauses_for_splits_disjuncts(self):
        d = path_definition()
        clauses = d.clauses_for(atom("path", "a", "b", "P", "C"))
        assert len(clauses) == 2

    def test_induction_scheme_mentions_hypothesis(self):
        d = path_definition()
        S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
        goal = atom("reach", S, D)
        scheme = d.induction_scheme((S, D, P, C), goal)
        text = str(scheme)
        assert "reach" in text
        assert "link" in text

    def test_induction_scheme_arity_check(self):
        d = path_definition()
        with pytest.raises(ValueError):
            d.induction_scheme((Var("X"),), atom("q", "X"))


class TestDefinitionTable:
    def test_add_get_contains(self):
        table = DefinitionTable([path_definition()])
        assert "path" in table
        assert table.get("path").predicate == "path"
        assert table.get("missing") is None
        assert len(table) == 1

    def test_duplicate_rejected(self):
        table = DefinitionTable([path_definition()])
        with pytest.raises(ValueError):
            table.add(path_definition())

    def test_non_recursive_predicates(self):
        table = DefinitionTable(
            [
                path_definition(),
                InductiveDefinition("best", (Var("X"),), (Clause((), atom("path", "X", "X", "P", "C")),)),
            ]
        )
        assert table.non_recursive_predicates() == ["best"]
        assert set(table.predicates()) == {"path", "best"}
