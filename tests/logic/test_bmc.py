"""Unit tests for finite models, fixpoints, and counterexample search."""

from repro.logic.bmc import (
    FiniteModel,
    FunctionRegistry,
    find_counterexample,
    ground_eval,
    least_fixpoint,
)
from repro.logic.formulas import atom, conj, eq, exists, forall, implies, lt
from repro.logic.inductive import Clause, DefinitionTable, InductiveDefinition
from repro.logic.terms import Var, func


def reach_definitions() -> DefinitionTable:
    X, Y, Z = Var("X"), Var("Y"), Var("Z")
    return DefinitionTable(
        [
            InductiveDefinition(
                "reach",
                (X, Y),
                (
                    Clause((), atom("edge", X, Y)),
                    Clause((Z,), conj(atom("edge", X, Z), atom("reach", Z, Y))),
                ),
            )
        ]
    )


def edge_model(edges) -> FiniteModel:
    model = FiniteModel()
    for a, b in edges:
        model.add_fact("edge", (a, b))
    return model


class TestGroundEval:
    def test_function_registry(self):
        registry = FunctionRegistry({"double": lambda x: 2 * x})
        assert ground_eval(func("double", 3), registry) == 6
        assert ground_eval(func("+", 1, func("double", 2)), registry) == 5

    def test_unbound_variable_raises(self):
        import pytest
        from repro.logic.bmc import EvaluationError

        with pytest.raises(EvaluationError):
            ground_eval(Var("X"), FunctionRegistry())


class TestFixpoint:
    def test_transitive_closure(self):
        result = least_fixpoint(reach_definitions(), edge_model([(1, 2), (2, 3), (3, 4)]))
        assert result.reached_fixpoint
        assert result.model.holds("reach", (1, 4))
        assert not result.model.holds("reach", (4, 1))

    def test_bounded_iteration_reports_no_fixpoint(self):
        # a growing counter never reaches a fixpoint within the bound
        X = Var("X")
        defs = DefinitionTable(
            [
                InductiveDefinition(
                    "count",
                    (X,),
                    (
                        Clause((), eq(X, 0)),
                        Clause((Var("Y"),), conj(atom("count", "Y"), eq(X, func("+", "Y", 1)))),
                    ),
                )
            ]
        )
        result = least_fixpoint(defs, FiniteModel(), max_rounds=5)
        assert not result.reached_fixpoint
        assert result.model.holds("count", (3,))

    def test_assignment_and_comparison_in_clause_bodies(self):
        X, Y, C = Var("X"), Var("Y"), Var("C")
        defs = DefinitionTable(
            [
                InductiveDefinition(
                    "cheap",
                    (X, Y),
                    (Clause((C,), conj(atom("edge", X, Y, C), lt(C, 3))),),
                )
            ]
        )
        model = FiniteModel()
        model.add_fact("edge", (1, 2, 1))
        model.add_fact("edge", (2, 3, 5))
        result = least_fixpoint(defs, model)
        assert result.model.holds("cheap", (1, 2))
        assert not result.model.holds("cheap", (2, 3))


class TestEvaluateAndCounterexamples:
    def test_quantified_evaluation(self):
        model = edge_model([(1, 2), (2, 3)])
        X, Y = Var("X"), Var("Y")
        assert model.evaluate(exists((X, Y), atom("edge", X, Y)))
        assert not model.evaluate(forall((X, Y), atom("edge", X, Y)))

    def test_counterexample_found_with_witness(self):
        result = least_fixpoint(reach_definitions(), edge_model([(1, 2), (2, 3)]))
        X, Y = Var("X"), Var("Y")
        claim = forall((X, Y), implies(atom("reach", X, Y), atom("edge", X, Y)))
        ce = find_counterexample(claim, result.model)
        assert ce is not None
        assert ce.assignment["X"] == 1 and ce.assignment["Y"] == 3

    def test_valid_property_has_no_counterexample(self):
        result = least_fixpoint(reach_definitions(), edge_model([(1, 2), (2, 3)]))
        X, Y = Var("X"), Var("Y")
        claim = forall((X, Y), implies(atom("edge", X, Y), atom("reach", X, Y)))
        assert find_counterexample(claim, result.model) is None

    def test_guided_search_over_implication(self):
        # a 5-variable property stays tractable because the antecedent is
        # joined against facts instead of enumerating the universe product
        model = FiniteModel()
        for i in range(8):
            model.add_fact("triple", (i, i + 1, i + 2))
        A, B, C, D, E = (Var(x) for x in "ABCDE")
        claim = forall(
            (A, B, C, D, E),
            implies(
                conj(atom("triple", A, B, C), atom("triple", C, D, E)),
                lt(A, E),
            ),
        )
        assert find_counterexample(claim, model) is None
