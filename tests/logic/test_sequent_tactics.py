"""Unit tests for sequents and the proof tactics."""

import pytest

from repro.logic.formulas import atom, conj, eq, exists, forall, implies, lt, le, neg
from repro.logic.inductive import Clause, DefinitionTable, InductiveDefinition
from repro.logic.sequent import Sequent
from repro.logic.tactics import (
    ProofContext,
    TacticError,
    case,
    expand,
    flatten,
    heuristic_instantiations,
    inst,
    lemma,
    propax,
    skolem,
    skosimp,
    split,
)
from repro.logic.terms import Const, Var, func


class TestSequentClosure:
    def test_axiom_closure(self):
        s = Sequent((atom("p", 1),), (atom("p", 1),))
        assert s.is_closed()

    def test_false_antecedent_true_succedent(self):
        from repro.logic.formulas import FALSE, TRUE

        assert Sequent((FALSE,), ()).is_closed()
        assert Sequent((), (TRUE,)).is_closed()

    def test_arithmetic_closure(self):
        s = Sequent((le("C", "C2"), lt("C2", "C")), ())
        assert s.is_closed()

    def test_equality_rewriting_closure(self):
        s = Sequent((eq("X", 3), atom("p", "X")), (atom("p", 3),))
        assert s.is_closed()

    def test_reflexive_equality_succedent(self):
        assert Sequent((), (eq("X", "X"),)).is_closed()

    def test_ground_comparison_evaluation(self):
        assert Sequent((), (lt(1, 2),)).is_closed()
        assert Sequent((lt(2, 1),), ()).is_closed()

    def test_conjunction_of_antecedents_in_succedent(self):
        s = Sequent((atom("p"), atom("q")), (conj(atom("p"), atom("q")),))
        assert s.is_closed()

    def test_open_goal_not_closed(self):
        assert not Sequent((atom("p", 1),), (atom("p", 2),)).is_closed()


class TestPropositionalTactics:
    def test_flatten_implication(self):
        goal = Sequent.goal(implies(atom("p"), atom("q")))
        (out,) = flatten(goal, ProofContext())
        assert atom("p") in out.antecedents
        assert atom("q") in out.succedents

    def test_flatten_negation_and_conjunction(self):
        goal = Sequent((conj(atom("p"), atom("q")),), (neg(atom("r")),))
        (out,) = flatten(goal, ProofContext())
        assert atom("p") in out.antecedents
        assert atom("q") in out.antecedents
        assert atom("r") in out.antecedents

    def test_flatten_requires_progress(self):
        with pytest.raises(TacticError):
            flatten(Sequent((atom("p"),), (atom("q"),)), ProofContext())

    def test_split_conjunction_in_succedent(self):
        goal = Sequent((), (conj(atom("p"), atom("q")),))
        subgoals = split(goal, ProofContext())
        assert len(subgoals) == 2

    def test_split_antecedent_implication(self):
        goal = Sequent((implies(atom("p"), atom("q")),), (atom("r"),))
        subgoals = split(goal, ProofContext())
        assert len(subgoals) == 2
        assert atom("p") in subgoals[0].succedents
        assert atom("q") in subgoals[1].antecedents

    def test_propax(self):
        assert propax(Sequent((atom("p"),), (atom("p"),)), ProofContext()) == []
        with pytest.raises(TacticError):
            propax(Sequent((atom("p"),), (atom("q"),)), ProofContext())


class TestQuantifierTactics:
    def test_skolem_universal_succedent(self):
        goal = Sequent.goal(forall((Var("X"),), atom("p", "X")))
        (out,) = skolem(goal, ProofContext())
        assert out.succedents[0] == atom("p", "X")

    def test_skolem_freshens_on_collision(self):
        goal = Sequent((atom("q", "X"),), (forall((Var("X"),), atom("p", "X")),))
        (out,) = skolem(goal, ProofContext())
        # the bound X must not be confused with the free X in the antecedent
        assert out.succedents[0] != atom("p", "X")

    def test_skosimp_combines(self):
        goal = Sequent.goal(forall((Var("X"),), implies(atom("p", "X"), atom("q", "X"))))
        (out,) = skosimp(goal, ProofContext())
        assert atom("p", "X") in out.antecedents
        assert atom("q", "X") in out.succedents

    def test_inst_universal_antecedent(self):
        quantified = forall((Var("X"),), implies(atom("p", "X"), atom("q", "X")))
        goal = Sequent((quantified, atom("p", 3)), (atom("q", 3),))
        (out,) = inst(goal, ProofContext(), terms=[3])
        assert implies(atom("p", 3), atom("q", 3)) in out.antecedents

    def test_inst_arity_mismatch(self):
        quantified = forall((Var("X"), Var("Y")), atom("p", "X", "Y"))
        goal = Sequent((quantified,), ())
        with pytest.raises(TacticError):
            inst(goal, ProofContext(), terms=[1])

    def test_inst_existential_succedent(self):
        goal = Sequent((atom("p", 3),), (exists((Var("X"),), atom("p", "X")),))
        (out,) = inst(goal, ProofContext(), terms=[3])
        assert out.is_closed()


class TestDefinitionTactics:
    def _context(self):
        X = Var("X")
        defs = DefinitionTable(
            [InductiveDefinition("even", (X,), (Clause((), eq(X, 0)), Clause((Var("Y"),), conj(atom("even", "Y"), eq(X, func("+", "Y", 2))))))]
        )
        return ProofContext(definitions=defs, lemmas={"zero_least": forall((X,), le(0, "X"))})

    def test_expand_definition(self):
        ctx = self._context()
        goal = Sequent((), (atom("even", 0),))
        (out,) = expand(goal, ctx, name="even")
        (out,) = flatten(out, ctx)  # split the disjunction in the succedent
        assert out.is_closed()  # disjunct 0=0 holds

    def test_expand_unknown_definition(self):
        with pytest.raises(TacticError):
            expand(Sequent((), (atom("odd", 1),)), self._context(), name="odd")

    def test_lemma_brings_axiom(self):
        ctx = self._context()
        goal = Sequent((), (le(0, 5),))
        (out,) = lemma(goal, ctx, name="zero_least")
        assert any(isinstance(f, type(forall((Var("X"),), le(0, "X")))) for f in out.antecedents)

    def test_case_split(self):
        subgoals = case(Sequent((), (atom("q"),)), ProofContext(), formula=atom("p"))
        assert len(subgoals) == 2
        assert atom("p") in subgoals[0].antecedents
        assert atom("p") in subgoals[1].succedents


class TestHeuristicInstantiation:
    def test_joint_matching_binds_all_vars(self):
        S, D, C, C2, P2 = Var("S"), Var("D"), Var("C"), Var("C2"), Var("P2")
        axiom = forall(
            (S, D, C, C2, P2),
            implies(conj(atom("bpc", S, D, C), atom("path", S, D, P2, C2)), le(C, C2)),
        )
        goal = Sequent(
            (axiom, atom("bpc", "a", "b", 5), atom("path", "a", "b", "p", 7)),
            (),
        )
        bindings = heuristic_instantiations(goal, axiom)
        assert any(
            b.get(S) == Const("a") and b.get(C2) == Const(7) and b.get(P2) == Const("p")
            for b in bindings
        )

    def test_existential_succedent_triggers(self):
        X = Var("X")
        goal = Sequent((atom("p", 3),), (exists((X,), atom("p", "X")),))
        bindings = heuristic_instantiations(goal, goal.succedents[0])
        assert {X: Const(3)} in bindings
