"""Property-based tests (hypothesis) for the logic substrate invariants."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.logic.arith import ComparisonSet, evaluate, linearize
from repro.logic.formulas import Comparison, atom, close, conj
from repro.logic.substitution import compose, match_terms, unify_terms
from repro.logic.terms import Const, Func, Var, func


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

var_names = st.sampled_from(["X", "Y", "Z", "U", "V"])
constants = st.integers(min_value=-20, max_value=20).map(Const)
variables = var_names.map(Var)


def terms(max_depth: int = 2):
    base = st.one_of(constants, variables)
    if max_depth == 0:
        return base
    return st.one_of(
        base,
        st.builds(
            lambda name, args: Func(name, tuple(args)),
            st.sampled_from(["f", "g", "+"]),
            st.lists(terms(max_depth - 1), min_size=1, max_size=2),
        ),
    )


arith_terms = st.one_of(
    constants,
    variables,
    st.builds(lambda a, b: func("+", a, b), constants, variables),
    st.builds(lambda a, b: func("-", a, b), variables, constants),
)


# ---------------------------------------------------------------------------
# Unification / matching invariants
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(terms(), terms())
def test_unifier_actually_unifies(a, b):
    subst = unify_terms(a, b)
    if subst is not None:
        assert a.substitute(subst) == b.substitute(subst)


@settings(max_examples=200, deadline=None)
@given(terms())
def test_unification_is_reflexive(t):
    assert unify_terms(t, t) is not None


@settings(max_examples=200, deadline=None)
@given(terms(), terms())
def test_unification_is_symmetric_in_success(a, b):
    assert (unify_terms(a, b) is None) == (unify_terms(b, a) is None)


@settings(max_examples=200, deadline=None)
@given(terms(), st.dictionaries(variables, constants, max_size=3))
def test_match_after_substitution_succeeds(pattern, binding):
    target = pattern.substitute(binding)
    subst = match_terms(pattern, target)
    assert subst is not None
    assert pattern.substitute(subst) == target


@settings(max_examples=200, deadline=None)
@given(
    terms(),
    st.dictionaries(variables, constants, max_size=3),
    st.dictionaries(variables, constants, max_size=3),
)
def test_substitution_composition_law(t, inner, outer):
    composed = compose(outer, inner)
    assert t.substitute(composed) == t.substitute(inner).substitute(outer)


# ---------------------------------------------------------------------------
# Formula invariants
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(st.lists(variables, min_size=0, max_size=4, unique=True))
def test_close_leaves_no_free_variables(vars):
    f = conj(*(atom("p", v) for v in vars)) if vars else atom("p", 1)
    assert close(f).free_vars() == frozenset()


# ---------------------------------------------------------------------------
# Arithmetic invariants
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(st.integers(-50, 50), st.integers(-50, 50))
def test_ground_comparisons_decided_correctly(a, b):
    cs = ComparisonSet([Comparison("<", Const(a), Const(b))])
    assert cs.is_unsatisfiable() == (not a < b)


@settings(max_examples=200, deadline=None)
@given(arith_terms, st.integers(-10, 10))
def test_shifted_constraint_is_consistent(t, k):
    # X <= t  together with  X <= t + k  (k >= 0) is never contradictory
    x = Var("W")
    cs = ComparisonSet(
        [Comparison("<=", x, t), Comparison("<=", x, func("+", t, Const(abs(k))))]
    )
    assert not cs.is_unsatisfiable()


@settings(max_examples=200, deadline=None)
@given(arith_terms, arith_terms, arith_terms)
def test_transitivity_entailment(a, b, c):
    cs = ComparisonSet([Comparison("<=", a, b), Comparison("<=", b, c)])
    if not cs.is_unsatisfiable():
        assert cs.implies(Comparison("<=", a, c))


@settings(max_examples=200, deadline=None)
@given(st.integers(-30, 30), st.integers(-30, 30))
def test_evaluate_matches_python_arithmetic(a, b):
    assert evaluate(func("+", a, b)) == a + b
    assert evaluate(func("*", a, b)) == a * b
    assert linearize(func("+", a, b)).constant == Fraction(a + b)
