"""Unit tests for the interactive/automated prover."""

import pytest

from repro.logic.formulas import atom, conj, eq, exists, forall, implies, le, lt, neg
from repro.logic.inductive import Clause, InductiveDefinition
from repro.logic.prover import ProofSession, prove
from repro.logic.tactics import ProofContext, TacticError
from repro.logic.theory import Theory
from repro.logic.terms import Var, func


def pathvector_theory() -> Theory:
    """The hand-built path-vector theory used throughout the prover tests."""

    S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
    Z, C1, C2, P2 = Var("Z"), Var("C1"), Var("C2"), Var("P2")
    thy = Theory("pathvector")
    thy.define(
        InductiveDefinition(
            "path",
            (S, D, P, C),
            (
                Clause((), conj(atom("link", S, D, C), eq(P, func("f_init", S, D)))),
                Clause(
                    (Z, C1, C2, P2),
                    conj(
                        atom("link", S, Z, C1),
                        atom("path", Z, D, P2, C2),
                        eq(C, func("+", C1, C2)),
                        eq(P, func("f_concatPath", S, P2)),
                    ),
                ),
            ),
        )
    )
    thy.define(
        InductiveDefinition(
            "bestPath",
            (S, D, P, C),
            (Clause((), conj(atom("bestPathCost", S, D, C), atom("path", S, D, P, C))),),
        )
    )
    thy.axiom(
        "bestPathCost_lower_bound",
        forall(
            (S, D, C),
            implies(
                atom("bestPathCost", S, D, C),
                forall((P2, C2), implies(atom("path", S, D, P2, C2), le(C, C2))),
            ),
        ),
    )
    thy.theorem(
        "bestPathStrong",
        forall(
            (S, D, C, P),
            implies(
                atom("bestPath", S, D, P, C),
                neg(exists((C2, P2), conj(atom("path", S, D, P2, C2), lt(C2, C)))),
            ),
        ),
    )
    return thy


class TestProofSession:
    def test_simple_propositional_proof(self):
        goal = implies(conj(atom("p"), atom("q")), atom("p"))
        session = ProofSession(ProofContext(), goal)
        session.apply("flatten")
        session.apply("assert")
        assert session.is_complete
        result = session.result()
        assert result.proved
        assert result.interactive_steps == 2

    def test_unknown_tactic_raises(self):
        session = ProofSession(ProofContext(), atom("p"))
        with pytest.raises(TacticError):
            session.apply("does-not-exist")

    def test_apply_after_completion_raises(self):
        session = ProofSession(ProofContext(), implies(atom("p"), atom("p")))
        session.apply("flatten")
        session.apply("assert")
        assert session.is_complete
        with pytest.raises(TacticError):
            session.apply("flatten")

    def test_try_apply_reports_no_progress(self):
        session = ProofSession(ProofContext(), atom("p"))
        assert not session.try_apply("flatten")
        assert session.steps == []

    def test_step_accounting(self):
        goal = forall((Var("X"),), implies(atom("p", "X"), atom("p", "X")))
        session = ProofSession(ProofContext(), goal)
        assert session.grind()
        result = session.result()
        assert result.proved
        assert result.interactive_steps == 0
        assert result.automated_steps == result.total_steps > 0
        assert result.automated_fraction == 1.0


class TestGrind:
    def test_grind_proves_bestpathstrong_automatically(self):
        thy = pathvector_theory()
        result = thy.prove_theorem("bestPathStrong", auto=True)
        assert result.proved
        assert result.elapsed_seconds < 1.0  # "a fraction of a second"

    def test_grind_does_not_prove_invalid_goal(self):
        thy = pathvector_theory()
        S, D = Var("S"), Var("D")
        thy.theorem("bogus", forall((S, D), atom("path", S, D, S, D)))
        result = thy.prove_theorem("bogus", auto=True, max_steps=60)
        assert not result.proved

    def test_grind_respects_max_steps(self):
        thy = pathvector_theory()
        S, D = Var("S"), Var("D")
        thy.theorem("bogus2", forall((S, D), atom("link", S, D, 1)))
        result = thy.prove_theorem("bogus2", auto=True, max_steps=5)
        assert not result.proved
        assert result.total_steps <= 6


class TestProveHelper:
    def test_script_then_auto(self):
        ctx = ProofContext()
        goal = implies(atom("p"), atom("p"))
        result = prove(ctx, goal, script=[("flatten",)], auto=True)
        assert result.proved

    def test_assumptions_are_available(self):
        ctx = ProofContext()
        result = prove(ctx, atom("q"), assumptions=[atom("q")], auto=True)
        assert result.proved

    def test_induction_proof_path_implies_link(self):
        thy = pathvector_theory()
        S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
        Z, CL = Var("Z"), Var("CL")
        thy.theorem(
            "pathHasLink",
            forall(
                (S, D, P, C),
                implies(atom("path", S, D, P, C), exists((Z, CL), atom("link", S, Z, CL))),
            ),
            script=(("induct", {"predicate": "path"}),),
        )
        result = thy.prove_theorem("pathHasLink")
        assert result.proved
