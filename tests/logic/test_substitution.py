"""Unit tests for unification and matching."""

from repro.logic.formulas import atom, eq
from repro.logic.substitution import (
    compose,
    match_atoms,
    match_formula,
    match_terms,
    occurs_in,
    unify_atoms,
    unify_terms,
)
from repro.logic.terms import Const, Var, func


class TestUnification:
    def test_unify_var_with_const(self):
        subst = unify_terms(Var("X"), Const(3))
        assert subst == {Var("X"): Const(3)}

    def test_unify_symmetric(self):
        assert unify_terms(Const(3), Var("X")) == {Var("X"): Const(3)}

    def test_unify_function_args(self):
        subst = unify_terms(func("f", "X", 2), func("f", 1, "Y"))
        assert subst[Var("X")] == Const(1)
        assert subst[Var("Y")] == Const(2)

    def test_unify_failure_on_mismatch(self):
        assert unify_terms(func("f", 1), func("g", 1)) is None
        assert unify_terms(Const(1), Const(2)) is None

    def test_occurs_check(self):
        assert occurs_in(Var("X"), func("f", "X"))
        assert unify_terms(Var("X"), func("f", "X")) is None

    def test_unifier_is_idempotent(self):
        subst = unify_terms(func("f", "X", "Y"), func("f", "Y", 3))
        assert subst is not None
        t = func("f", "X", "Y").substitute(subst)
        assert t == t.substitute(subst)
        assert t == func("f", 3, 3)

    def test_unify_atoms(self):
        a = atom("path", "S", "D", 3)
        b = atom("path", "a", "D", "C")
        subst = unify_atoms(a, b)
        assert subst[Var("S")] == Const("a")
        assert subst[Var("C")] == Const(3)
        assert unify_atoms(atom("p", 1), atom("q", 1)) is None
        assert unify_atoms(atom("p", 1), atom("p", 1, 2)) is None


class TestMatching:
    def test_match_binds_pattern_vars_only(self):
        subst = match_terms(func("f", "X"), func("f", "Y"))
        assert subst == {Var("X"): Var("Y")}
        # target variables are treated as constants
        assert match_terms(func("f", 1), func("f", "Y")) is None

    def test_match_consistency(self):
        assert match_terms(func("f", "X", "X"), func("f", 1, 2)) is None
        assert match_terms(func("f", "X", "X"), func("f", 1, 1)) == {Var("X"): Const(1)}

    def test_match_atoms_and_formula(self):
        subst = match_atoms(atom("p", "X", 2), atom("p", 7, 2))
        assert subst == {Var("X"): Const(7)}
        assert match_formula(eq("X", 3), eq(5, 3)) == {Var("X"): Const(5)}
        assert match_formula(eq("X", 3), atom("p")) is None


class TestCompose:
    def test_compose_applies_outer_to_inner(self):
        inner = {Var("X"): Var("Y")}
        outer = {Var("Y"): Const(3)}
        composed = compose(outer, inner)
        assert composed[Var("X")] == Const(3)
        assert composed[Var("Y")] == Const(3)
        t = func("f", "X")
        assert t.substitute(composed) == t.substitute(inner).substitute(outer)
