"""Unit tests for repro.logic.terms."""

import pytest

from repro.logic.terms import Const, Var, fresh_name, fresh_var, func, term, var, variables_in


class TestTermConstruction:
    def test_var_identity_by_name(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")
        assert hash(Var("X")) == hash(Var("X"))

    def test_const_equality_by_value(self):
        assert Const(3) == Const(3)
        assert Const(3) != Const(4)
        assert Const("a") != Const(3)

    def test_func_structural_equality(self):
        assert func("+", 1, 2) == func("+", 1, 2)
        assert func("+", 1, 2) != func("+", 2, 1)
        assert func("f", "X") != func("g", "X")

    def test_term_coercion_rules(self):
        assert isinstance(term("X"), Var)
        assert isinstance(term("_anon"), Var)
        assert isinstance(term("alice"), Const)
        assert term(3) == Const(3)
        assert term(True).value is True
        assert term((1, 2)).value == (1, 2)
        assert term(Var("Z")) == Var("Z")

    def test_term_coercion_rejects_unknown(self):
        with pytest.raises(TypeError):
            term(object())


class TestFreeVarsAndSubstitution:
    def test_free_vars(self):
        t = func("f", "X", func("g", "Y", 3))
        assert t.free_vars() == {Var("X"), Var("Y")}
        assert Const(1).free_vars() == frozenset()

    def test_substitute_replaces_vars(self):
        t = func("f", "X", "Y")
        out = t.substitute({Var("X"): Const(1)})
        assert out == func("f", 1, "Y")

    def test_substitute_nested(self):
        t = func("f", func("g", "X"))
        out = t.substitute({Var("X"): func("h", "Z")})
        assert out == func("f", func("g", func("h", "Z")))

    def test_is_ground(self):
        assert func("f", 1, 2).is_ground
        assert not func("f", "X").is_ground

    def test_variables_in(self):
        assert variables_in([func("f", "X"), var("Y"), Const(1)]) == {Var("X"), Var("Y")}

    def test_subterms_preorder(self):
        t = func("f", func("g", "X"), 1)
        subs = list(t.subterms())
        assert subs[0] == t
        assert Var("X") in subs
        assert Const(1) in subs


class TestFreshNames:
    def test_fresh_name_avoids_taken(self):
        assert fresh_name("X", []) == "X"
        assert fresh_name("X", ["X"]) == "X!1"
        assert fresh_name("X", ["X", "X!1"]) == "X!2"

    def test_fresh_var_keeps_sort(self):
        from repro.logic.terms import NODE

        v = Var("S", NODE)
        fresh = fresh_var(v, [Var("S")])
        assert fresh.name == "S!1"
        assert fresh.sort == NODE
