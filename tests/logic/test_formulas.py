"""Unit tests for repro.logic.formulas."""

from repro.logic.formulas import (
    And,
    Atom,
    Comparison,
    FALSE,
    Forall,
    Or,
    TRUE,
    atom,
    close,
    conj,
    disj,
    eq,
    exists,
    forall,
    implies,
    lt,
    neg,
    predicates_in,
)
from repro.logic.terms import Const, Var


class TestConstructors:
    def test_atom_coerces_args(self):
        a = atom("link", "S", "D", 3)
        assert a.predicate == "link"
        assert a.args[0] == Var("S")
        assert a.args[2] == Const(3)

    def test_conj_simplification(self):
        assert conj() == TRUE
        assert conj(atom("p")) == atom("p")
        assert conj(atom("p"), TRUE) == atom("p")
        assert conj(atom("p"), FALSE) == FALSE
        assert isinstance(conj(atom("p"), atom("q")), And)

    def test_disj_simplification(self):
        assert disj() == FALSE
        assert disj(atom("p")) == atom("p")
        assert disj(atom("p"), TRUE) == TRUE
        assert isinstance(disj(atom("p"), atom("q")), Or)

    def test_and_flattens_nested(self):
        f = And((And((atom("p"), atom("q"))), atom("r")))
        assert len(f.parts) == 3

    def test_neg_involution(self):
        assert neg(neg(atom("p"))) == atom("p")
        assert neg(TRUE) == FALSE

    def test_comparison_negate(self):
        assert lt("X", 3).negate() == Comparison(">=", Var("X"), Const(3))
        assert eq("X", 3).negate().op == "/="


class TestQuantifiers:
    def test_free_vars_exclude_bound(self):
        f = forall((Var("X"),), atom("p", "X", "Y"))
        assert f.free_vars() == {Var("Y")}

    def test_close_universally_quantifies(self):
        f = close(atom("p", "X", "Y"))
        assert isinstance(f, Forall)
        assert f.free_vars() == frozenset()

    def test_capture_avoiding_substitution(self):
        # substituting Y := X into (FORALL X: p(X, Y)) must rename the bound X
        f = forall((Var("X"),), atom("p", "X", "Y"))
        out = f.substitute({Var("Y"): Var("X")})
        assert isinstance(out, Forall)
        bound = out.vars[0]
        assert bound != Var("X")
        assert Atom("p", (bound, Var("X"))) == out.body

    def test_substitution_drops_bound_bindings(self):
        f = exists((Var("X"),), atom("p", "X"))
        assert f.substitute({Var("X"): Const(1)}) == f

    def test_empty_quantifier_returns_body(self):
        assert forall((), atom("p")) == atom("p")


class TestStructure:
    def test_subformulas_and_atoms(self):
        f = implies(conj(atom("p", "X"), lt("X", 3)), atom("q", "X"))
        atoms = list(f.atoms())
        assert {a.predicate for a in atoms} == {"p", "q"}

    def test_predicates_in(self):
        f = forall((Var("X"),), implies(atom("p", "X"), exists((Var("Y"),), atom("q", "X", "Y"))))
        assert predicates_in(f) == {"p", "q"}

    def test_hashable_in_sets(self):
        s = {atom("p", 1), atom("p", 1), atom("q", 1)}
        assert len(s) == 2
