"""Unit tests for the linear-arithmetic decision procedure."""

from fractions import Fraction

from repro.logic.arith import (
    ComparisonSet,
    comparisons_entail,
    comparisons_unsat,
    evaluate,
    linearize,
)
from repro.logic.formulas import eq, ge, gt, le, lt, neq
from repro.logic.terms import func, var


class TestEvaluate:
    def test_ground_arithmetic(self):
        assert evaluate(func("+", 1, 2)) == 3
        assert evaluate(func("*", 3, func("-", 5, 1))) == 12
        assert evaluate(func("/", 1, 2)) == Fraction(1, 2)
        assert evaluate(func("min", 3, 1)) == 1

    def test_non_ground_returns_none(self):
        assert evaluate(func("+", var("X"), 1)) is None
        assert evaluate(var("X")) is None


class TestLinearize:
    def test_combines_like_terms(self):
        expr = linearize(func("-", func("+", "X", "X"), "X"))
        assert expr.as_dict() == {var("X"): Fraction(1)}

    def test_opaque_atoms(self):
        expr = linearize(func("+", func("f", "X"), 2))
        assert expr.constant == 2
        assert func("f", var("X")) in expr.as_dict()


class TestDecisions:
    def test_simple_contradiction(self):
        assert comparisons_unsat([lt("X", 3), gt("X", 5)])
        assert not comparisons_unsat([lt("X", 3), gt("X", 1)])

    def test_the_bestpath_contradiction(self):
        # C <= C2 and C2 < C is the contradiction closing bestPathStrong
        assert comparisons_unsat([le("C", "C2"), lt("C2", "C")])

    def test_equality_propagation(self):
        assert comparisons_unsat([eq("X", 3), gt("X", 4)])
        assert comparisons_unsat([eq("X", "Y"), lt("X", "Y")])

    def test_disequality_handling(self):
        assert comparisons_unsat([eq("X", "Y"), neq("X", "Y")])
        assert comparisons_unsat([le("X", 3), ge("X", 3), neq("X", 3)])
        assert not comparisons_unsat([neq("X", "Y")])

    def test_entailment(self):
        assert comparisons_entail([lt("X", "Y"), lt("Y", "Z")], lt("X", "Z"))
        assert comparisons_entail([le("X", 3)], le("X", 5))
        assert not comparisons_entail([le("X", 5)], le("X", 3))
        assert comparisons_entail([eq("X", "Y")], le("X", "Y"))

    def test_entail_disequality(self):
        assert comparisons_entail([lt("X", "Y")], neq("X", "Y"))

    def test_chained_sums(self):
        # C = C1 + C2, C1 >= 0 entails C >= C2
        assert comparisons_entail(
            [eq("C", func("+", "C1", "C2")), ge("C1", 0)], ge("C", "C2")
        )

    def test_copy_does_not_alias(self):
        cs = ComparisonSet([lt("X", 3)])
        copy = cs.copy()
        copy.add(gt("X", 5))
        assert copy.is_unsatisfiable()
        assert not cs.is_unsatisfiable()
