"""Unit tests for theories and theory interpretation."""

import pytest

from repro.logic.formulas import atom, forall, implies, le
from repro.logic.inductive import Clause, InductiveDefinition
from repro.logic.theory import Interpretation, Theory
from repro.logic.terms import Var


def abstract_order_theory() -> Theory:
    thy = Theory("partialOrder")
    X, Y, Z = Var("X"), Var("Y"), Var("Z")
    thy.declare("leq", "predicate", arity=2)
    thy.axiom("reflexive", forall((X,), atom("leq", X, X)))
    thy.axiom(
        "transitive",
        forall(
            (X, Y, Z),
            implies(atom("leq", X, Y) & atom("leq", Y, Z), atom("leq", X, Z)),
        ),
    )
    return thy


class TestTheory:
    def test_axiom_and_theorem_registration(self):
        thy = abstract_order_theory()
        assert set(thy.axioms) == {"reflexive", "transitive"}
        with pytest.raises(ValueError):
            thy.axiom("reflexive", atom("p"))

    def test_importing_merges_axioms_and_definitions(self):
        base = abstract_order_theory()
        X = Var("X")
        base.define(InductiveDefinition("zero", (X,), (Clause((), le(X, 0)),)))
        derived = Theory("derived")
        derived.importing(base)
        assert "reflexive" in derived.all_axioms()
        assert derived.all_definitions().get("zero") is not None

    def test_prove_theorem_uses_axioms(self):
        thy = abstract_order_theory()
        A, B, C = Var("A"), Var("B"), Var("C")
        thy.theorem(
            "chain",
            forall(
                (A, B, C),
                implies(atom("leq", A, B) & atom("leq", B, C), atom("leq", A, C)),
            ),
        )
        result = thy.prove_theorem("chain")
        assert result.proved

    def test_unknown_theorem(self):
        with pytest.raises(KeyError):
            abstract_order_theory().prove_theorem("missing")

    def test_prove_all(self):
        thy = abstract_order_theory()
        X = Var("X")
        thy.theorem("self", forall((X,), atom("leq", X, X)))
        results = thy.prove_all()
        assert results["self"].proved


class TestInterpretation:
    def test_obligations_renamed_per_axiom(self):
        abstract = abstract_order_theory()
        concrete = Theory("intOrder")
        interp = Interpretation(abstract, concrete, {"leq": "int_leq"})
        obligations = interp.obligations()
        assert len(obligations) == 2
        assert all("int_leq" in str(ob.statement) for ob in obligations)
        assert all(not ob.discharged for ob in obligations)

    def test_discharge_with_checker(self):
        abstract = abstract_order_theory()
        concrete = Theory("intOrder")
        interp = Interpretation(abstract, concrete, {"leq": "int_leq"})
        results = interp.discharge_with(lambda ob: (True, "exhaustive"))
        assert interp.all_discharged
        assert all(ob.method == "checker" for ob in results)

    def test_discharge_with_prover_uses_concrete_axioms(self):
        abstract = Theory("abstract")
        X = Var("X")
        abstract.declare("p", "predicate", arity=1)
        abstract.axiom("p_holds", forall((X,), atom("p", X)))
        concrete = Theory("concrete")
        concrete.axiom("q_everywhere", forall((X,), atom("q", X)))
        interp = Interpretation(abstract, concrete, {"p": "q"})
        interp.discharge_with_prover()
        assert interp.all_discharged

    def test_report_lists_every_obligation(self):
        abstract = abstract_order_theory()
        interp = Interpretation(abstract, Theory("c"), {})
        report = interp.report()
        assert "reflexive" in report and "transitive" in report
