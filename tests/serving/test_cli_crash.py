"""Crash recovery through the real CLI: a daemon SIGKILLed mid-update-
stream restarts from its snapshot + ledger tail and reaches the exact
fingerprint of an uninterrupted run (torn ledger lines included)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

SERVE_ARGS = ["--family", "tree", "--size", "14", "--snapshot-every", "3"]


def serving_env() -> dict:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_daemon(state_dir: Path) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serving", "serve",
         "--state-dir", str(state_dir), *SERVE_ARGS],
        env=serving_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    assert "serving on" in line, f"daemon failed to boot: {line!r}"
    return proc


def send(state_dir: Path, *args: str) -> dict:
    completed = subprocess.run(
        [sys.executable, "-m", "repro.serving", *args, "--state-dir", str(state_dir)],
        env=serving_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    return json.loads(completed.stdout)


def push_updates(state_dir: Path, rounds: int) -> None:
    for i in range(rounds):
        dst = str(i % 4 + 1)
        send(state_dir, "update", "link_fail", "--src", "0", "--dst", dst)
        send(state_dir, "update", "link_restore", "--src", "0", "--dst", dst)


class TestCrashRecovery:
    def test_sigkill_restart_reaches_identical_fingerprint(self, tmp_path):
        state = tmp_path / "state"
        daemon = start_daemon(state)
        try:
            push_updates(state, rounds=3)
            before = send(state, "query", "fingerprint")
            assert before["seq"] == 6
        finally:
            daemon.kill()
            daemon.wait(timeout=30)

        # snapshot cadence 3 ⇒ the kill left a snapshot at seq 6 or
        # earlier plus a ledger tail; recovery must replay to seq 6
        daemon = start_daemon(state)
        try:
            status = send(state, "query", "status")
            assert status["recovered_from"] in ("snapshot+replay", "replay")
            after = send(state, "query", "fingerprint")
            assert after["seq"] == before["seq"]
            assert after["fingerprint"] == before["fingerprint"]
            # and the daemon keeps working after recovery
            ack = send(state, "update", "link_fail", "--src", "0", "--dst", "1")
            assert ack["seq"] == 7 and ack["settled"]
        finally:
            send(state, "query", "stop")
            assert daemon.wait(timeout=30) == 0

    def test_sigkill_with_torn_ledger_line(self, tmp_path):
        state = tmp_path / "state"
        daemon = start_daemon(state)
        try:
            push_updates(state, rounds=2)
            before = send(state, "query", "fingerprint")
        finally:
            daemon.kill()
            daemon.wait(timeout=30)

        # simulate the torn tail a kill mid-append leaves behind
        with (state / "updates.jsonl").open("a") as handle:
            handle.write('{"seq": 5, "verb": "link_fail", "args": {"sr')

        daemon = start_daemon(state)
        try:
            after = send(state, "query", "fingerprint")
            assert after["seq"] == before["seq"]
            assert after["fingerprint"] == before["fingerprint"]
        finally:
            send(state, "query", "stop")
            daemon.wait(timeout=30)

    def test_cli_one_shot_client_flags(self, tmp_path):
        state = tmp_path / "state"
        daemon = start_daemon(state)
        try:
            answer = send(state, "query", "best_path", "--src", "0", "--dst", "5")
            assert answer["found"] and answer["path"][0] == 0
            table = send(state, "query", "table", "--predicate", "link", "--node", "0")
            assert table["count"] > 0
            raw = send(
                state, "query", "routes", "--args", json.dumps({"node": 0})
            )
            assert raw["count"] > 0
        finally:
            send(state, "query", "stop")
            daemon.wait(timeout=30)
