"""Socket-level integration: the asyncio server serializing concurrent
clients, protocol error paths, and the stop verb."""

import asyncio
import threading

import pytest

from repro.serving import (
    RouteServer,
    RouteService,
    ServerConfig,
    ServingClient,
    ServingError,
)
from repro.serving.client import read_server_info


@pytest.fixture()
def running_server(tmp_path):
    service = RouteService(
        ServerConfig(family="tree", size=12, state_dir=str(tmp_path / "state"))
    )
    server = RouteServer(service)
    ready = threading.Event()

    def run():
        async def main():
            await server.start()
            ready.set()
            await server.serve_until_stopped()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to start"
    yield server
    if thread.is_alive():
        try:
            with ServingClient(server.host, server.port) as client:
                client.stop()
        except (OSError, ServingError):
            pass
        thread.join(10)


class TestServer:
    def test_query_and_update_round_trip(self, running_server):
        with ServingClient(running_server.host, running_server.port) as client:
            assert client.query("ping")["pong"] is True
            assert client.best_path(0, 5)["found"]
            ack = client.update("link_fail", src=0, dst=1)
            assert ack["seq"] == 1 and ack["settled"]
            assert not client.best_path(0, 1)["found"]

    def test_server_info_written(self, running_server, tmp_path):
        info = read_server_info(tmp_path / "state")
        assert info["host"] == running_server.host
        assert info["port"] == running_server.port
        assert info["pid"] > 0

    def test_concurrent_clients_serialize(self, running_server):
        """Updates and queries from racing threads all succeed and the
        update sequence numbers come out dense (1..N, no loss, no dupes)."""

        seqs, found = [], []
        lock = threading.Lock()

        def updater():
            with ServingClient(running_server.host, running_server.port) as client:
                for _ in range(4):
                    a = client.update("link_fail", src=0, dst=1)
                    b = client.update("link_restore", src=0, dst=1)
                    with lock:
                        seqs.extend([a["seq"], b["seq"]])

        def querier():
            with ServingClient(running_server.host, running_server.port) as client:
                for _ in range(8):
                    answer = client.best_path(0, 5)
                    with lock:
                        found.append(answer["found"])

        threads = [threading.Thread(target=updater)] + [
            threading.Thread(target=querier) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert sorted(seqs) == list(range(1, 9))
        # every query saw a settled state on the 0–5 path (never perturbed)
        assert all(found) and len(found) == 16

    def test_error_responses_keep_connection_usable(self, running_server):
        with ServingClient(running_server.host, running_server.port) as client:
            with pytest.raises(ServingError, match="unknown node"):
                client.update("link_fail", src=999, dst=0)
            with pytest.raises(ServingError, match="unknown verb"):
                client.call("frobnicate")
            assert client.query("ping")["pong"] is True

    def test_stop_verb_shuts_down(self, running_server):
        with ServingClient(running_server.host, running_server.port) as client:
            assert client.stop()["stopping"] is True
        deadline = threading.Event()
        deadline.wait(0.5)  # give the loop a beat to tear down
        with pytest.raises(ServingError, match="cannot connect"):
            ServingClient(running_server.host, running_server.port, timeout=2)
