"""Exactly-once serving retries: request-key dedup at the service, lost-ack
recovery over real sockets under injected connection resets, torn-snapshot
recovery, and the hardened client error mapping."""

import asyncio
import json
import os
import socket
import threading

import pytest

from repro.dn.faults import SERVING_SCOPE, Fault, FaultInjector, FaultPlan
from repro.serving import (
    RouteServer,
    RouteService,
    ServerConfig,
    ServingClient,
    ServingError,
)
from repro.serving.client import read_server_info


def make_service(tmp_path, **overrides) -> RouteService:
    config = ServerConfig(
        family="tree", size=12, state_dir=str(tmp_path / "state"), **overrides
    )
    return RouteService(config)


@pytest.fixture()
def server_factory(tmp_path):
    """Start a RouteServer in a thread; yields (server, shutdown helper)."""

    started: list[tuple[RouteServer, threading.Thread]] = []

    def start(**overrides) -> RouteServer:
        service = make_service(tmp_path, **overrides)
        server = RouteServer(service)
        ready = threading.Event()

        def run():
            async def main():
                await server.start()
                ready.set()
                await server.serve_until_stopped()

            asyncio.run(main())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10), "server failed to start"
        started.append((server, thread))
        return server

    yield start
    for server, thread in started:
        if thread.is_alive():
            try:
                with ServingClient(server.host, server.port) as client:
                    client.stop()
            except (OSError, ServingError):
                pass
            thread.join(10)


class TestServiceDedup:
    def test_repeated_key_returns_original_ack(self, tmp_path):
        service = make_service(tmp_path)
        try:
            first = service.apply_update(
                "link_fail", {"src": 0, "dst": 1}, request_key="k1"
            )
            again = service.apply_update(
                "link_fail", {"src": 0, "dst": 1}, request_key="k1"
            )
            assert again["seq"] == first["seq"] == 1
            assert again["deduplicated"] is True
            assert "deduplicated" not in first
            assert len(service.history) == 1  # not double-applied
        finally:
            service.close()

    def test_dedup_survives_daemon_restart(self, tmp_path):
        service = make_service(tmp_path)
        first = service.apply_update(
            "link_fail", {"src": 0, "dst": 1}, request_key="boot-1"
        )
        fingerprint = service.engine.trace.fingerprint()
        service.close()
        reborn = make_service(tmp_path)
        try:
            assert reborn.recovered_from in ("replay", "snapshot+replay")
            retry = reborn.apply_update(
                "link_fail", {"src": 0, "dst": 1}, request_key="boot-1"
            )
            assert retry["seq"] == first["seq"]
            assert retry["deduplicated"] is True
            assert reborn.seq == 1
            assert reborn.engine.trace.fingerprint() == fingerprint
        finally:
            reborn.close()

    def test_dedup_cache_is_bounded(self, tmp_path):
        service = make_service(tmp_path, dedup_cache=2)
        try:
            for n in range(3):
                verb = "link_fail" if n == 0 else "link_restore"
                service.apply_update(verb, {"src": 0, "dst": 1}, request_key=f"k{n}")
            assert list(service._acks) == ["k1", "k2"]  # k0 evicted LRU
        finally:
            service.close()


class TestLostAckOverSockets:
    def test_retry_after_ack_reset_applies_once(self, server_factory):
        server = server_factory()
        server.service.fault_injector = FaultInjector(
            FaultPlan(
                (Fault(kind="reset_connection", scope=SERVING_SCOPE, at=1, arg="ack"),)
            )
        )
        with ServingClient(server.host, server.port, retries=3) as client:
            ack = client.update("link_fail", src=0, dst=1)
            # first attempt applied but the ack was lost to the injected
            # reset; the retry must surface the original ack, not seq 2
            assert ack["seq"] == 1
            assert ack.get("deduplicated") is True
            status = client.query("status")
            assert status["seq"] == 1
        assert server.service.history == [("link_fail", {"src": 0, "dst": 1})]

    def test_retry_after_recv_reset_applies_once(self, server_factory):
        server = server_factory()
        server.service.fault_injector = FaultInjector(
            FaultPlan((Fault(kind="reset_connection", scope=SERVING_SCOPE, at=1, arg="recv"),))
        )
        with ServingClient(server.host, server.port, retries=3) as client:
            ack = client.update("link_fail", src=0, dst=1)
            # the request was dropped before dispatch: the retry is the
            # first (and only) application
            assert ack["seq"] == 1
            assert "deduplicated" not in ack
            assert client.query("status")["seq"] == 1

    def test_unkeyed_update_is_not_retried(self, server_factory):
        server = server_factory()
        server.service.fault_injector = FaultInjector(
            FaultPlan((Fault(kind="reset_connection", scope=SERVING_SCOPE, at=1, arg="ack"),))
        )
        with ServingClient(server.host, server.port, retries=0) as client:
            with pytest.raises(ServingError, match="link_fail"):
                client.call("link_fail", {"src": 0, "dst": 1})

    def test_server_survives_client_disconnect_mid_session(self, server_factory):
        server = server_factory()
        raw = socket.create_connection((server.host, server.port), timeout=5)
        raw.sendall(b'{"id": 1, "verb": "ping", "args": {}}\n')
        raw.recv(4096)
        raw.close()  # mid-session disconnect: server must keep serving
        with ServingClient(server.host, server.port) as client:
            assert client.query("ping")["pong"] is True


class TestTornSnapshot:
    def test_torn_snapshot_falls_back_to_replay(self, tmp_path):
        plan = FaultPlan(
            (Fault(kind="tear_snapshot", scope=SERVING_SCOPE, at=1),)
        )
        plan_path = tmp_path / "plan.json"
        plan.save(plan_path)
        service = make_service(
            tmp_path, snapshot_every=1, fault_plan=str(plan_path)
        )
        service.apply_update("link_fail", {"src": 0, "dst": 1})
        fingerprint = service.engine.trace.fingerprint()
        snapshot_path = service.snapshot_path
        service.close()
        assert snapshot_path.exists()
        with pytest.raises(Exception):
            import pickle

            with snapshot_path.open("rb") as handle:
                pickle.load(handle)  # the write really was torn
        reborn = make_service(tmp_path, snapshot_every=1, fault_plan=None)
        try:
            assert reborn.recovered_from == "replay"
            assert reborn.engine.trace.fingerprint() == fingerprint
        finally:
            reborn.close()


class TestClientHardening:
    def test_closed_daemon_maps_to_serving_error(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def accept_and_close():
            conn, _ = listener.accept()
            conn.close()

        thread = threading.Thread(target=accept_and_close, daemon=True)
        thread.start()
        try:
            client = ServingClient(host, port, timeout=2)
            with pytest.raises(ServingError, match=r"ping.*request 1"):
                client.call("ping")
            client.close()
        finally:
            listener.close()
            thread.join(5)

    def test_read_server_info_rejects_dead_pid(self, tmp_path):
        (tmp_path / "server.json").write_text(
            json.dumps({"host": "127.0.0.1", "port": 1, "pid": 2**22 + 12345})
        )
        with pytest.raises(ServingError, match="dead pid|unusable"):
            read_server_info(tmp_path, timeout=0.3)

    def test_read_server_info_rejects_missing_keys(self, tmp_path):
        (tmp_path / "server.json").write_text(json.dumps({"host": "127.0.0.1"}))
        with pytest.raises(ServingError, match="missing keys"):
            read_server_info(tmp_path, timeout=0.3)

    def test_read_server_info_waits_for_boot(self, tmp_path):
        path = tmp_path / "server.json"

        def write_later():
            threading.Event().wait(0.3)
            path.write_text(
                json.dumps({"host": "127.0.0.1", "port": 9, "pid": os.getpid()})
            )

        thread = threading.Thread(target=write_later, daemon=True)
        thread.start()
        info = read_server_info(tmp_path, timeout=5)
        assert info["port"] == 9
        thread.join(5)
