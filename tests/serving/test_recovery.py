"""Durability contract: snapshot round-trips, ledger replay, and crash
recovery all reach byte-identical ``Trace.fingerprint()`` state."""

import pickle

import pytest

from repro.serving import RouteService, ServerConfig
from repro.serving.checkpoint import (
    SnapshotUnsupported,
    build_topology,
    capture_engine,
    restore_engine,
)
from repro.serving.service import LEDGER_NAME, SNAPSHOT_NAME

UPDATES = [
    ("link_fail", {"src": 0, "dst": 1}),
    ("cost_change", {"src": 1, "dst": 2, "cost": 7.5}),
    ("set_fact", {"predicate": "link", "values": [0, 5, 2.0]}),
    ("link_restore", {"src": 0, "dst": 1}),
    ("del_fact", {"predicate": "link", "values": [0, 5, 2.0]}),
]


def reference_fingerprint(**config_overrides) -> str:
    """Fingerprint of an uninterrupted, non-durable run of UPDATES."""

    service = RouteService(
        ServerConfig(family="tree", size=16, snapshot_every=0, **config_overrides)
    )
    try:
        for verb, args in UPDATES:
            service.apply_update(verb, args)
        return service.query("fingerprint", {})["fingerprint"]
    finally:
        service.close()


def durable_config(tmp_path, **overrides) -> ServerConfig:
    kwargs = {
        "family": "tree",
        "size": 16,
        "state_dir": str(tmp_path / "state"),
        "snapshot_every": 2,
    }
    kwargs.update(overrides)
    return ServerConfig(**kwargs)


def run_durable(config) -> str:
    service = RouteService(config)
    try:
        for verb, args in UPDATES:
            service.apply_update(verb, args)
        return service.query("fingerprint", {})["fingerprint"]
    finally:
        service.close()


class TestSnapshotRoundTrip:
    def test_capture_restore_identity(self):
        service = RouteService(ServerConfig(family="tree", size=16, snapshot_every=0))
        try:
            for verb, args in UPDATES[:3]:
                service.apply_update(verb, args)
            fingerprint = service.engine.trace.fingerprint()
            capture = pickle.loads(pickle.dumps(capture_engine(service.engine)))
        finally:
            service.close()

        from repro.dn.engine import DistributedEngine, EngineConfig
        from repro.serving.service import build_serving_program

        config = ServerConfig(family="tree", size=16)
        engine = DistributedEngine(
            build_serving_program(config),
            build_topology(capture),
            config=EngineConfig(seed=config.seed, max_events=config.settle_max_events),
        )
        restore_engine(engine, capture)
        assert engine.trace.fingerprint() == fingerprint

    def test_capture_refuses_sharded_engine(self):
        service = RouteService(
            ServerConfig(family="tree", size=12, shards=2, snapshot_every=0)
        )
        try:
            with pytest.raises(SnapshotUnsupported):
                capture_engine(service.engine)
        finally:
            service.close()


class TestRecovery:
    def test_live_durable_run_matches_reference(self, tmp_path):
        assert run_durable(durable_config(tmp_path)) == reference_fingerprint()

    def test_snapshot_plus_ledger_tail(self, tmp_path):
        config = durable_config(tmp_path)
        reference = run_durable(config)
        recovered = RouteService(durable_config(tmp_path))
        try:
            assert recovered.recovered_from == "snapshot+replay"
            assert recovered.seq == len(UPDATES)
            assert recovered.query("fingerprint", {})["fingerprint"] == reference
        finally:
            recovered.close()

    def test_full_ledger_replay_without_snapshot(self, tmp_path):
        config = durable_config(tmp_path)
        reference = run_durable(config)
        (tmp_path / "state" / SNAPSHOT_NAME).unlink()
        recovered = RouteService(durable_config(tmp_path))
        try:
            assert recovered.recovered_from == "replay"
            assert recovered.query("fingerprint", {})["fingerprint"] == reference
        finally:
            recovered.close()

    def test_torn_ledger_line_is_skipped(self, tmp_path):
        reference = run_durable(durable_config(tmp_path))
        ledger = tmp_path / "state" / LEDGER_NAME
        with ledger.open("a") as handle:
            handle.write('{"seq": 6, "verb": "link_fail", "args": {"sr')
        recovered = RouteService(durable_config(tmp_path))
        try:
            assert recovered.seq == len(UPDATES)
            assert recovered.query("fingerprint", {})["fingerprint"] == reference
        finally:
            recovered.close()

    def test_corrupt_snapshot_falls_back_to_replay(self, tmp_path):
        reference = run_durable(durable_config(tmp_path))
        (tmp_path / "state" / SNAPSHOT_NAME).write_bytes(b"not a pickle")
        recovered = RouteService(durable_config(tmp_path))
        try:
            assert recovered.recovered_from == "replay"
            assert recovered.query("fingerprint", {})["fingerprint"] == reference
        finally:
            recovered.close()

    def test_recovery_continues_accepting_updates(self, tmp_path):
        run_durable(durable_config(tmp_path))
        recovered = RouteService(durable_config(tmp_path))
        try:
            ack = recovered.apply_update("link_fail", {"src": 0, "dst": 1})
            assert ack["seq"] == len(UPDATES) + 1 and ack["settled"]
        finally:
            recovered.close()

    def test_sharded_daemon_recovers_by_replay(self, tmp_path):
        reference = reference_fingerprint()
        config = durable_config(tmp_path, shards=2)
        assert run_durable(config) == reference
        recovered = RouteService(durable_config(tmp_path, shards=2))
        try:
            assert recovered.recovered_from == "replay"  # no sharded snapshots
            assert recovered.query("fingerprint", {})["fingerprint"] == reference
        finally:
            recovered.close()

    def test_boot_record_pins_determinism_fields(self, tmp_path):
        """A restart with different scenario flags must run the persisted
        config — the ledger is only meaningful against the original one."""

        run_durable(durable_config(tmp_path))
        recovered = RouteService(durable_config(tmp_path, size=99, topo_seed=7))
        try:
            assert recovered.config.size == 16
            assert recovered.config.topo_seed == 0
        finally:
            recovered.close()
