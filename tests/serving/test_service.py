"""In-process coverage of :class:`repro.serving.service.RouteService`:
update application, query answers, what-if isolation, and validation."""

import pytest

from repro.serving import ProtocolError, RouteService, ServerConfig
from repro.serving.service import build_serving_program


@pytest.fixture()
def service():
    svc = RouteService(ServerConfig(family="tree", size=12, snapshot_every=0))
    yield svc
    svc.close()


class TestBoot:
    def test_boots_settled_with_routes(self, service):
        assert service.settled
        assert service.recovered_from == "boot"
        routes = service.query("routes", {})
        assert routes["count"] > 0
        assert routes["seq"] == 0

    def test_soft_state_override_unknown_predicate(self):
        config = ServerConfig(soft_state={"nope": 5.0})
        with pytest.raises(Exception, match="nope"):
            build_serving_program(config)

    def test_monitors_attached(self, service):
        status = service.query("status", {})
        kinds = {m["monitor"] for m in status["monitors"]}
        assert kinds == set(ServerConfig().monitors)
        assert status["monitors_ok"]


class TestUpdates:
    def test_link_fail_withdraws_and_restore_recovers(self, service):
        before = service.query("best_path", {"src": 0, "dst": 1})
        assert before["found"]
        ack = service.apply_update("link_fail", {"src": 0, "dst": 1})
        assert ack["seq"] == 1 and ack["settled"]
        assert not service.query("best_path", {"src": 0, "dst": 1})["found"]
        service.apply_update("link_restore", {"src": 0, "dst": 1})
        after = service.query("best_path", {"src": 0, "dst": 1})
        assert after["found"] and after["path"] == before["path"]

    def test_cost_change_shifts_best_metric(self, service):
        before = service.query("best_path", {"src": 0, "dst": 1})
        service.apply_update(
            "cost_change", {"src": 0, "dst": 1, "cost": before["metric"] + 5}
        )
        after = service.query("best_path", {"src": 0, "dst": 1})
        assert after["metric"] != before["metric"]

    def test_set_then_del_fact_round_trips_fingerprint_forward(self, service):
        fp0 = service.query("fingerprint", {})["fingerprint"]
        service.apply_update(
            "set_fact", {"predicate": "link", "values": [0, 5, 1.5]}
        )
        assert service.query("table", {"predicate": "link", "node": 0})["count"] > 0
        service.apply_update(
            "del_fact", {"predicate": "link", "values": [0, 5, 1.5]}
        )
        # state changed (the fingerprint covers the whole change stream)
        assert service.query("fingerprint", {})["fingerprint"] != fp0
        assert service.seq == 2

    def test_sim_time_advances_deterministically(self, service):
        t0 = service.query("status", {})["sim_time"]
        service.apply_update("link_fail", {"src": 0, "dst": 1})
        t1 = service.query("status", {})["sim_time"]
        assert t1 > t0

    def test_refresh_verb_applies_on_soft_state_program(self):
        svc = RouteService(
            ServerConfig(family="tree", size=8, soft_state={"link": 30.0})
        )
        try:
            ack = svc.apply_update("refresh", {})
            assert ack["settled"]
        finally:
            svc.close()


class TestQueries:
    def test_best_path_missing_route(self, service):
        service.apply_update("link_fail", {"src": 0, "dst": 1})
        answer = service.query("best_path", {"src": 0, "dst": 1})
        assert answer == {"found": False, "src": 0, "dst": 1, "seq": 1}

    def test_routes_node_filter(self, service):
        all_routes = service.query("routes", {})
        node_routes = service.query("routes", {"node": 0})
        assert 0 < node_routes["count"] < all_routes["count"]
        assert all(r["src"] == 0 for r in node_routes["routes"])

    def test_table_rows_sorted_json_shaped(self, service):
        table = service.query("table", {"predicate": "link"})
        assert table["count"] == len(table["rows"])
        assert all(isinstance(row, list) for row in table["rows"])

    def test_ping(self, service):
        assert service.query("ping", {})["pong"] is True

    def test_status_counts(self, service):
        status = service.query("status", {})
        assert status["nodes"] == 12
        assert status["links_up"] > 0
        assert status["shards"] == 1
        assert status["settled"]


class TestWhatIf:
    def test_fork_answers_without_touching_live_state(self, service):
        fp = service.query("fingerprint", {})["fingerprint"]
        result = service.query(
            "what_if",
            {
                "updates": [{"verb": "link_fail", "args": {"src": 0, "dst": 1}}],
                "query": {"verb": "best_path", "args": {"src": 0, "dst": 1}},
            },
        )
        assert result["answer"]["found"] is False
        assert result["hypothetical"] == 1
        # live engine untouched
        assert service.query("best_path", {"src": 0, "dst": 1})["found"]
        assert service.query("fingerprint", {})["fingerprint"] == fp

    def test_fork_sees_accepted_history(self, service):
        service.apply_update("link_fail", {"src": 0, "dst": 1})
        result = service.query(
            "what_if",
            {
                "updates": [{"verb": "link_restore", "args": {"src": 0, "dst": 1}}],
                "query": {"verb": "best_path", "args": {"src": 0, "dst": 1}},
            },
        )
        assert result["base_seq"] == 1
        assert result["answer"]["found"] is True

    def test_nested_what_if_rejected(self, service):
        with pytest.raises(ProtocolError):
            service.query(
                "what_if", {"updates": [], "query": {"verb": "what_if", "args": {}}}
            )


class TestValidation:
    def test_unknown_node_rejected(self, service):
        with pytest.raises(ProtocolError, match="unknown node"):
            service.apply_update("link_fail", {"src": 99, "dst": 0})
        assert service.seq == 0

    def test_cost_change_requires_numeric_cost(self, service):
        with pytest.raises(ProtocolError, match="numeric"):
            service.apply_update("cost_change", {"src": 0, "dst": 1, "cost": "x"})

    def test_set_fact_requires_located_values(self, service):
        with pytest.raises(ProtocolError, match="located"):
            service.apply_update("set_fact", {"predicate": "link", "values": [99, 0, 1]})

    def test_unknown_query_verb(self, service):
        with pytest.raises(ProtocolError, match="unknown query verb"):
            service.query("nonsense", {})


class TestTupleNodeIds:
    def test_grid_node_ids_survive_json_round_trip(self):
        svc = RouteService(ServerConfig(family="grid", size=9, snapshot_every=0))
        try:
            answer = svc.query("best_path", {"src": [0, 0], "dst": [2, 2]})
            assert answer["found"]
            ack = svc.apply_update("link_fail", {"src": [0, 0], "dst": [0, 1]})
            assert ack["settled"]
        finally:
            svc.close()


class TestBootLintGuard:
    """``fvn-serve serve`` refuses statically-rejected programs at boot
    (docs/ANALYSIS.md) unless ``allow_unsafe`` overrides the guard."""

    #: remote negation: bestPathCost is tested at @D from a rule local to
    #: @S — diagnostic NDL304, an error-severity finding
    UNSAFE_RULE = "u1 unsafe(@S) :- link(@S,D,C), !bestPathCost(@D,S,C).\n"

    @pytest.fixture()
    def unsafe_program(self, monkeypatch):
        from repro.ndlog.parser import parse_program
        from repro.protocols.pathvector import PATH_VECTOR_SOURCE
        import repro.serving.service as service_mod

        program = parse_program(
            PATH_VECTOR_SOURCE + self.UNSAFE_RULE, "unsafe-serving"
        )
        monkeypatch.setattr(
            service_mod, "build_serving_program", lambda config: program
        )
        return program

    def test_boot_refuses_unsafe_program(self, unsafe_program):
        from repro.serving.service import ServiceError

        with pytest.raises(ServiceError, match="NDL304"):
            RouteService(ServerConfig(family="tree", size=8, snapshot_every=0))

    def test_allow_unsafe_overrides_the_guard(self, unsafe_program):
        svc = RouteService(
            ServerConfig(family="tree", size=8, snapshot_every=0, allow_unsafe=True)
        )
        try:
            assert svc.settled
            assert svc.query("routes", {})["count"] > 0
        finally:
            svc.close()

    def test_cli_flag_threads_through(self):
        from repro.serving.cli import _build_parser

        args = _build_parser().parse_args(["serve", "--allow-unsafe"])
        assert args.allow_unsafe is True
        assert _build_parser().parse_args(["serve"]).allow_unsafe is False

    def test_no_codegen_flag_threads_through(self):
        from repro.serving.cli import _build_parser

        assert _build_parser().parse_args(["serve", "--no-codegen"]).no_codegen
        assert not _build_parser().parse_args(["serve"]).no_codegen
