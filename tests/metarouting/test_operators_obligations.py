"""Unit tests for composition operators and obligation discharge."""

import pytest

from repro.metarouting import (
    add_algebra,
    all_base_algebras,
    bgp_system,
    check_all_axioms,
    hop_count_algebra,
    instantiate,
    instantiate_all,
    lex_product,
    local_pref_algebra,
    policy_shortest_path_system,
    preservation_conditions,
    restrict_labels,
    restrict_signatures,
    route_algebra_theory,
    safe_bgp_system,
    usable_path_algebra,
)


class TestLexProduct:
    def test_signature_and_label_structure(self):
        product = lex_product(hop_count_algebra(max_hops=4), add_algebra(max_cost=4))
        assert all(isinstance(s, tuple) for s in product.signatures)
        assert product.prohibited == (float("inf"), float("inf"))

    def test_lexicographic_preference(self):
        product = lex_product(hop_count_algebra(max_hops=8), add_algebra(max_cost=8))
        assert product.strictly_preferred((1, 5), (2, 0))
        assert product.strictly_preferred((2, 1), (2, 3))
        assert not product.strictly_preferred((2, 3), (2, 1))

    def test_prohibited_absorbs_componentwise(self):
        product = lex_product(usable_path_algebra(), add_algebra(max_cost=4))
        out = product.apply(("deny", 1), ("usable", 0))
        assert out == product.prohibited

    def test_safe_composition_satisfies_all_axioms(self):
        report = check_all_axioms(safe_bgp_system(max_cost=6), sample=10)
        assert report.all_hold, report.failed_axioms()

    def test_policy_filter_composition_is_well_behaved(self):
        report = check_all_axioms(policy_shortest_path_system(max_cost=6), sample=10)
        assert report.is_well_behaved

    def test_bgp_system_is_not_monotone(self):
        # the paper's BGPSystem = lexProduct[LP, RC]; LP is not monotone, so
        # neither is the product — the algebraic face of policy divergence
        report = check_all_axioms(bgp_system(max_cost=6), sample=10)
        assert "monotonicity" in report.failed_axioms()

    def test_preservation_conditions(self):
        report = preservation_conditions(hop_count_algebra(max_hops=6), add_algebra(max_cost=6), sample=10)
        assert report.first_monotone and report.second_monotone
        assert report.product_isotone_expected
        bad = preservation_conditions(local_pref_algebra(), add_algebra(max_cost=6), sample=10)
        assert not bad.product_monotone_expected


class TestRestrictions:
    def test_label_restriction_preserves_axioms(self):
        alg = add_algebra(max_cost=8, labels=(1, 2, 3, 5))
        restricted = restrict_labels(alg, [1, 2])
        assert set(restricted.labels) == {1, 2}
        assert check_all_axioms(restricted, sample=12).all_hold

    def test_label_restriction_requires_nonempty(self):
        with pytest.raises(ValueError):
            restrict_labels(add_algebra(), [99])

    def test_signature_restriction_checks_closure(self):
        alg = add_algebra(max_cost=8, labels=(1,))
        closed = restrict_signatures(alg, range(0, 9))
        assert check_all_axioms(closed, sample=12).all_hold
        with pytest.raises(ValueError):
            restrict_signatures(alg, [0, 1, 2])  # 2+1=3 escapes the subset


class TestObligations:
    def test_route_algebra_theory_has_five_axioms(self):
        thy = route_algebra_theory()
        assert set(thy.axioms) == {
            "totality",
            "maximality",
            "absorption",
            "monotonicity",
            "isotonicity",
        }

    def test_instantiation_discharges_well_behaved_algebra(self):
        result = instantiate(add_algebra(max_cost=8), sample=12)
        assert result.all_discharged
        assert result.total == 5
        assert result.well_behaved
        assert result.elapsed_seconds < 2.0

    def test_instantiation_reports_failed_obligation(self):
        result = instantiate(local_pref_algebra(), sample=12)
        assert not result.all_discharged
        open_obligations = [ob for ob in result.obligations if not ob.discharged]
        assert [ob.source_axiom for ob in open_obligations] == ["monotonicity"]

    def test_instantiate_all_base_algebras(self):
        results = instantiate_all(all_base_algebras(), sample=10)
        by_name = {r.algebra: r for r in results}
        assert by_name["addA"].all_discharged
        assert by_name["widestA"].all_discharged
        assert not by_name["lpA"].all_discharged
