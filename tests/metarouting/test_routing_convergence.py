"""Unit tests for algebra-driven route computation and convergence analysis."""

from repro.metarouting import (
    LabeledGraph,
    add_algebra,
    analyze_convergence,
    asynchronous_routes,
    bgp_system,
    compute_routes,
    optimality_gap,
    safe_bgp_system,
    widest_path_algebra,
)


def triangle_graph(label=lambda cost: cost):
    edges = [
        ("a", "b", label(1)), ("b", "a", label(1)),
        ("b", "c", label(2)), ("c", "b", label(2)),
        ("a", "c", label(5)), ("c", "a", label(5)),
    ]
    return LabeledGraph(edges)


class TestComputeRoutes:
    def test_shortest_paths_on_additive_algebra(self):
        outcome = compute_routes(add_algebra(max_cost=16), triangle_graph())
        assert outcome.converged
        assert outcome.signature("a", "c") == 3
        assert outcome.route("a", "c").path == ("a", "b", "c")
        assert outcome.signature("a", "b") == 1

    def test_widest_paths(self):
        graph = LabeledGraph([
            ("a", "b", 10), ("b", "a", 10),
            ("b", "c", 10), ("c", "b", 10),
            ("a", "c", 2), ("c", "a", 2),
        ])
        outcome = compute_routes(widest_path_algebra(bandwidths=(0, 2, 10, 100)), graph)
        assert outcome.converged
        # the two-hop path has bottleneck 10, better than the direct 2
        assert outcome.signature("a", "c") == 10

    def test_optimality_for_well_behaved_algebra(self):
        algebra = add_algebra(max_cost=16)
        graph = triangle_graph()
        outcome = compute_routes(algebra, graph)
        assert optimality_gap(algebra, graph, outcome) == {}

    def test_unreachable_destination_is_prohibited(self):
        algebra = add_algebra(max_cost=16)
        graph = LabeledGraph([("a", "b", 1)])
        graph.add_node("z")
        outcome = compute_routes(algebra, graph)
        assert outcome.signature("a", "z") == algebra.prohibited


class TestConvergenceAnalysis:
    def test_well_behaved_algebra_converges_everywhere(self):
        report = analyze_convergence(add_algebra(max_cost=16), triangle_graph(), runs=2, sample=12)
        assert report.predicted_convergent
        assert report.observed_convergent
        assert report.consistent

    def test_safe_bgp_composition_converges(self):
        graph = triangle_graph(label=lambda cost: (1, cost))
        report = analyze_convergence(safe_bgp_system(max_cost=16), graph, runs=2, sample=8)
        assert report.predicted_convergent
        assert report.observed_convergent

    def test_asynchronous_runs_reach_stability(self):
        converged, used = asynchronous_routes(add_algebra(max_cost=16), triangle_graph(), seed=3)
        assert converged
        assert used > 0

    def test_bgp_system_has_no_guarantee(self):
        graph = triangle_graph(label=lambda cost: (1, cost))
        report = analyze_convergence(bgp_system(max_cost=16), graph, runs=1, sample=12)
        assert not report.predicted_convergent
        # whatever is observed, the report must not be inconsistent
        assert report.consistent
