"""Unit tests for base algebras and the four metarouting axioms."""


from repro.metarouting import (
    add_algebra,
    check_absorption,
    check_all_axioms,
    check_isotonicity,
    check_maximality,
    check_monotonicity,
    hop_count_algebra,
    is_well_behaved,
    local_pref_algebra,
    reliability_algebra,
    usable_path_algebra,
    widest_path_algebra,
)
from repro.metarouting.algebra import algebra_from_rank


class TestAlgebraBasics:
    def test_best_selects_most_preferred(self):
        alg = add_algebra(max_cost=10)
        assert alg.best([5, 2, 7]) == 2
        assert alg.best([]) == alg.prohibited

    def test_widest_prefers_larger(self):
        alg = widest_path_algebra()
        assert alg.best([1, 10, 5]) == 10
        assert alg.apply(2, 10) == 2

    def test_total_order_check(self):
        alg = add_algebra(max_cost=5)
        assert alg.check_total_order() is None

    def test_partial_order_detected(self):
        broken = algebra_from_rank(
            "broken",
            signatures=(1, 2),
            labels=(1,),
            apply_label=lambda label, s: s,
            rank=lambda s: s,
            prohibited=2,
        )
        # sabotage the preference into a non-total relation
        broken.prefer = lambda a, b: False
        assert broken.check_total_order() is not None


class TestAxioms:
    def test_additive_algebra_satisfies_all_axioms(self):
        report = check_all_axioms(add_algebra(max_cost=10), sample=20)
        assert report.all_hold
        assert report.is_well_behaved
        assert report.total_cases > 0

    def test_all_well_behaved_base_algebras(self):
        for algebra in (hop_count_algebra(), widest_path_algebra(), reliability_algebra(), usable_path_algebra()):
            report = check_all_axioms(algebra, sample=16)
            assert report.all_hold, f"{algebra.name}: {report.failed_axioms()}"

    def test_local_pref_violates_monotonicity_only(self):
        report = check_all_axioms(local_pref_algebra(), sample=16)
        assert report.failed_axioms() == ["monotonicity"]
        assert report.reports["monotonicity"].counterexample is not None
        assert not report.is_well_behaved

    def test_individual_axiom_checks(self):
        alg = add_algebra(max_cost=8)
        assert check_maximality(alg).holds
        assert check_absorption(alg).holds
        assert check_monotonicity(alg).holds
        assert check_isotonicity(alg, sample=12).holds

    def test_strict_monotonicity_distinguishes_hop_count(self):
        strict = check_monotonicity(hop_count_algebra(max_hops=8), sample=8, strict=True)
        # saturation at the bound means strictness fails only at the boundary;
        # restricting to interior signatures it holds — here we just check the
        # checker reports a counterexample at the boundary rather than crashing
        assert strict.axiom == "strict_monotonicity"

    def test_is_well_behaved_helper(self):
        assert is_well_behaved(add_algebra(max_cost=6))
        assert not is_well_behaved(local_pref_algebra())

    def test_broken_absorption_detected(self):
        broken = algebra_from_rank(
            "brokenAbsorb",
            signatures=(0, 1, 2, 99),
            labels=(1,),
            apply_label=lambda label, s: min(label + s, 99) if s != 99 else 1,  # violates absorption
            rank=lambda s: s,
            prohibited=99,
        )
        assert not check_absorption(broken).holds
