"""Cross-layer property-based tests: metarouting, SPP, and protocol agreement.

These tests check invariants that tie the layers together on randomly
generated inputs: composition operators preserve the algebra-consistency
axioms, SPP instances derived from plain graphs are always solvable, and the
distance-vector and path-vector substrates agree with the algebraic route
computation on unit-cost topologies.
"""

from hypothesis import given, settings, strategies as st

from repro.bgp.simulation import SPVPSimulator
from repro.bgp.spp import shortest_path_instance
from repro.metarouting import (
    LabeledGraph,
    add_algebra,
    check_absorption,
    check_maximality,
    compute_routes,
    hop_count_algebra,
    lex_product,
    usable_path_algebra,
    widest_path_algebra,
)
from repro.protocols.distancevector import DistanceVectorSimulator


# ---------------------------------------------------------------------------
# Random graphs
# ---------------------------------------------------------------------------

@st.composite
def connected_edge_lists(draw):
    """Edges of a small connected undirected graph over nodes 0..n-1."""

    n = draw(st.integers(min_value=2, max_value=6))
    edges = [(i, draw(st.integers(min_value=0, max_value=i - 1))) for i in range(1, n)]
    extra = draw(st.integers(min_value=0, max_value=3))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b and (a, b) not in edges and (b, a) not in edges:
            edges.append((a, b))
    return edges


base_algebras = st.sampled_from(
    [add_algebra(max_cost=8), hop_count_algebra(max_hops=8), widest_path_algebra(), usable_path_algebra()]
)


# ---------------------------------------------------------------------------
# Metarouting invariants
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(base_algebras, base_algebras)
def test_lex_product_preserves_consistency_axioms(first, second):
    """Maximality, absorption, and totality always survive the lexical
    product of algebras that satisfy them (monotonicity need not)."""

    product = lex_product(first, second)
    assert check_maximality(product, sample=20).holds
    assert check_absorption(product, sample=20).holds
    assert product.check_total_order() is None


@settings(max_examples=15, deadline=None)
@given(connected_edge_lists())
def test_hop_count_routes_match_graph_distance(edges):
    """The generic vectoring protocol over the hop-count algebra computes
    exactly the undirected hop distance."""

    import networkx as nx

    algebra = hop_count_algebra(max_hops=16)
    directed = [(a, b, 1) for a, b in edges] + [(b, a, 1) for a, b in edges]
    outcome = compute_routes(algebra, LabeledGraph(directed))
    assert outcome.converged
    graph = nx.Graph(edges)
    for src in graph.nodes:
        lengths = nx.single_source_shortest_path_length(graph, src)
        for dst, hops in lengths.items():
            if src == dst:
                continue
            assert outcome.signature(src, dst) == hops


@settings(max_examples=15, deadline=None)
@given(connected_edge_lists())
def test_distance_vector_simulator_matches_graph_distance(edges):
    import networkx as nx

    from repro.dn.network import Topology

    topology = Topology.from_edges([(a, b, 1) for a, b in edges])
    simulator = DistanceVectorSimulator(topology)
    _, converged = simulator.run_to_convergence()
    assert converged
    graph = nx.Graph(edges)
    for src in graph.nodes:
        lengths = nx.single_source_shortest_path_length(graph, src)
        for dst, hops in lengths.items():
            assert simulator.metric(src, dst) == hops


# ---------------------------------------------------------------------------
# SPP / SPVP invariants
# ---------------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(connected_edge_lists())
def test_shortest_path_spp_instances_are_safe(edges):
    """Shortest-path preferences are conflict-free: a stable solution exists
    and fair SPVP runs converge to a stable assignment."""

    instance = shortest_path_instance(edges, origin=0)
    solutions = instance.stable_solutions()
    assert solutions, "shortest-path SPP instance must be solvable"
    result = SPVPSimulator(instance, seed=0).run(schedule="random", max_activations=4_000)
    assert result.converged
    assert instance.is_stable(result.final_assignment)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_spvp_converged_assignments_are_always_stable(seed):
    from repro.bgp.spp import disagree

    result = SPVPSimulator(disagree(), seed=seed).run(schedule="random", max_activations=2_000)
    if result.converged:
        assert disagree().is_stable(result.final_assignment)
