"""Unit tests for the protocol library front ends."""

import pytest

from repro.protocols import (
    DistanceVectorSimulator,
    LinkStateProtocol,
    PathVectorProtocol,
    distance_vector_program,
    heartbeat_facts,
    heartbeat_program,
    path_vector_program,
)
from repro.ndlog.seminaive import evaluate
from repro.workloads.topologies import line_topology, ring_topology


class TestPathVectorFrontEnd:
    def test_centralized_and_distributed_agree(self):
        topo = ring_topology(4)
        central = PathVectorProtocol(topo)
        central.run_centralized()
        distributed = PathVectorProtocol(topo)
        distributed.run_distributed()
        # the 4-ring has equal-cost ties (two ways around), and keyed
        # replacement keeps an arbitrary winner among them — so compare the
        # order-independent projection, then check each distributed winner is
        # one of the centralized optimal paths
        def costs(entries):
            return {(e.source, e.destination): e.cost for e in entries}

        assert costs(central.best_paths()) == costs(distributed.best_paths())
        optimal = {(e.source, e.destination, e.path, e.cost) for e in central.paths()}
        for entry in distributed.best_paths():
            assert (entry.source, entry.destination, entry.path, entry.cost) in optimal

    def test_best_path_lookup(self):
        protocol = PathVectorProtocol(line_topology(3))
        protocol.run_centralized()
        best = protocol.best_path(0, 2)
        assert best is not None and best.cost == 2 and best.path == (0, 1, 2)
        assert protocol.best_path(0, 99) is None

    def test_results_require_execution(self):
        protocol = PathVectorProtocol(line_topology(2))
        with pytest.raises(RuntimeError):
            protocol.best_paths()


class TestDistanceVector:
    def test_static_fixpoint_matches_path_vector_costs(self):
        topo = ring_topology(4)
        facts = [("link", f) for f in topo.link_facts()]
        dv = evaluate(distance_vector_program(), facts)
        pv = evaluate(path_vector_program(), facts)
        dv_costs = {(s, d): c for s, d, c in dv.rows("bestCost")}
        pv_costs = {(s, d): c for s, d, c in pv.rows("bestPathCost")}
        assert dv_costs == pv_costs

    def test_simulator_converges_on_static_topology(self):
        sim = DistanceVectorSimulator(ring_topology(5))
        rounds, converged = sim.run_to_convergence()
        assert converged
        assert sim.metric(0, 2) == 2

    def test_count_to_infinity_after_partition(self):
        report = DistanceVectorSimulator(line_topology(3)).failure_experiment(1, 2, observe=(0, 2))
        assert report.converged_before_failure
        assert report.count_to_infinity
        assert report.max_metric_seen >= report.infinity
        # the metric climbs through intermediate values (the signature behaviour)
        intermediates = [m for m in report.metric_trajectory if 2 < m < report.infinity]
        assert len(set(intermediates)) >= 2

    def test_split_horizon_mitigates_two_node_loop(self):
        report = DistanceVectorSimulator(line_topology(3), split_horizon=True).failure_experiment(
            1, 2, observe=(0, 2)
        )
        assert not report.count_to_infinity

    def test_path_vector_does_not_count_to_infinity(self):
        # the path-vector simulator (loop-suppressing) reference: after the
        # same failure the NDlog path-vector fixpoint on the surviving
        # topology has no route at all rather than a climbing metric
        topo = line_topology(3)
        topo.fail_link(1, 2)
        pv = evaluate(path_vector_program(), [("link", f) for f in topo.link_facts()])
        assert all(d != 2 for _, d, _, _ in pv.rows("bestPath"))


class TestLinkStateAndHeartbeat:
    def test_link_state_floods_full_topology(self):
        protocol = LinkStateProtocol(line_topology(3))
        protocol.run_distributed()
        # every node ends up with every directed link in its LSA database
        for node in (0, 1, 2):
            assert protocol.lsa_database_size(node) == 4
        assert protocol.best_cost(0, 0, 2) == 2
        assert protocol.best_cost(2, 0, 2) == 2  # same answer everywhere

    def test_heartbeat_program_is_soft_state(self):
        program = heartbeat_program()
        assert program.materialized["heartbeat"].is_soft_state
        assert program.lifetime_of("alive") == 3
        facts = heartbeat_facts([("a", "b"), ("b", "c")])
        db = evaluate(program, facts)
        assert ("a", "b") in db.table("alive")
        assert ("a", "c") in db.table("reachableAlive")
