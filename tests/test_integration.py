"""End-to-end integration tests spanning the whole FVN pipeline."""


from repro.bgp import (
    ComponentBGPSimulator,
    SPVPSimulator,
    disagree,
    disagree_policies,
    policy_facts,
    policy_path_vector_program,
    shortest_path_policies,
)
from repro.dn.engine import DistributedEngine
from repro.fvn import FVN, check_translation_equivalence, standard_property_suite
from repro.bgp.model import bgp_model, policy_registry
from repro.metarouting import (
    LabeledGraph,
    add_algebra,
    bgp_system,
    compute_routes,
    instantiate,
    safe_bgp_system,
)
from repro.ndlog.seminaive import evaluate
from repro.protocols import PathVectorProtocol, path_vector_program
from repro.workloads import labeled_edges, random_topology, ring_topology


class TestFullPipeline:
    def test_verify_then_execute_path_vector(self):
        """Figure 1 end to end: properties, arc 4, arc 5, arc 7 on one protocol."""

        fvn = FVN("pathvector-e2e")
        fvn.use_ndlog(path_vector_program())
        for spec in standard_property_suite():
            fvn.add_property(spec)
        topology = random_topology(6, seed=3)
        instance = [("link", fact) for fact in topology.link_facts()]
        report = fvn.verify(instances=[instance])
        assert report.proved_count == 4
        trace = fvn.execute(topology)
        assert trace.quiescent
        # the verified optimality property holds on the execution output
        best = {(r[0], r[1]): r[3] for r in fvn.execution.rows("bestPath")}
        for (s, d, p, c) in fvn.execution.rows("path"):
            assert best[(s, d)] <= c

    def test_algebra_design_matches_execution(self):
        """The metarouting design phase and the NDlog execution agree on routes."""

        topology = random_topology(6, seed=11, max_cost=4)
        algebra = add_algebra(max_cost=64, labels=(1, 2, 3, 4))
        assert instantiate(algebra, sample=16).all_discharged
        graph = LabeledGraph(labeled_edges(topology))
        algebra_routes = compute_routes(algebra, graph)
        protocol = PathVectorProtocol(topology)
        protocol.run_centralized()
        for entry in protocol.best_paths():
            assert algebra_routes.signature(entry.source, entry.destination) == entry.cost

    def test_component_model_to_ndlog_to_execution(self):
        """Arc 2 → arc 3 → arc 7 for the BGP component model."""

        policies = shortest_path_policies()
        model = bgp_model(policies)
        equivalence = check_translation_equivalence(
            model,
            {"r0": (1, 0, 0, (0,), 100, 0.0, 0)},
            functions=policy_registry(policies),
        )
        assert equivalence.matches
        program = policy_path_vector_program()
        topology = ring_topology(4)
        engine = DistributedEngine(program, topology)
        trace = engine.run(extra_facts=policy_facts(policies, topology.nodes))
        assert trace.quiescent
        assert len(engine.rows("bestRoute")) >= topology.node_count * (topology.node_count - 1)

    def test_policy_conflict_story_is_consistent_across_layers(self):
        """Disagree seen from three angles: the SPP gadget (two solutions),
        SPVP (oscillation under simultaneous activation), and the algebra
        (BGPSystem fails monotonicity) — the paper's §3.2/§3.3 narrative."""

        gadget = disagree()
        assert len(gadget.stable_solutions()) == 2
        spvp = SPVPSimulator(gadget, seed=0).run(schedule="simultaneous", max_activations=300)
        assert spvp.oscillated and not spvp.converged
        from repro.metarouting import check_all_axioms

        assert "monotonicity" in check_all_axioms(bgp_system(max_cost=6), sample=12).failed_axioms()
        assert check_all_axioms(safe_bgp_system(max_cost=6), sample=10).all_hold
        component_sim = ComponentBGPSimulator(disagree_policies(), [(0, 1), (0, 2), (1, 2)], origin=0)
        _, converged = component_sim.run_to_fixpoint(max_rounds=20)
        assert not converged

    def test_distributed_matches_centralized_on_random_topologies(self):
        for seed in (1, 2):
            topology = random_topology(5, seed=seed)
            program = path_vector_program()
            engine = DistributedEngine(program, topology)
            engine.run()
            central = evaluate(program, [("link", f) for f in topology.link_facts()])
            assert set(engine.rows("bestPath")) == set(central.rows("bestPath"))
