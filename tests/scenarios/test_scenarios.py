"""Scenario generation tests + centralized/distributed cross-validation.

The acceptance bar for the scenario generator is that the two execution
paths the paper relies on — the centralized stratified evaluator and the
distributed runtime — still compute the same fixpoint on generated
topologies, across at least the grid, tree, and power-law families.
"""

import networkx as nx
import pytest

from repro.dn.engine import DistributedEngine, EngineConfig
from repro.ndlog.seminaive import evaluate
from repro.protocols.pathvector import path_vector_program
from repro.scenarios import (
    POLICY_KINDS,
    bfs_customer_provider,
    cost_churn_schedule,
    generate_scenario,
    generate_suite,
    link_churn_schedule,
    scenario_families,
    scenario_policies,
)


class TestGeneration:
    @pytest.mark.parametrize("family", scenario_families())
    def test_families_generate_connected_topologies(self, family):
        scenario = generate_scenario(family, size=24, seed=3)
        graph = scenario.topology.to_networkx().to_undirected()
        assert scenario.node_count >= 24
        assert nx.is_connected(graph)

    @pytest.mark.parametrize("family", ["tree", "power_law", "waxman"])
    def test_generation_is_deterministic(self, family):
        a = generate_scenario(family, size=30, seed=11)
        b = generate_scenario(family, size=30, seed=11)
        assert a.topology.link_facts() == b.topology.link_facts()
        c = generate_scenario(family, size=30, seed=12)
        assert a.topology.link_facts() != c.topology.link_facts()

    def test_scales_to_hundreds_of_nodes(self):
        scenario = generate_scenario("power_law", size=200, seed=1)
        assert scenario.node_count == 200
        assert nx.is_connected(scenario.topology.to_networkx().to_undirected())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            generate_scenario("moebius", size=10)

    def test_suite_covers_all_families(self):
        suite = generate_suite(size=12, seed=5)
        assert sorted(s.family for s in suite) == scenario_families()


class TestChurn:
    def test_churn_schedule_references_existing_links(self):
        scenario = generate_scenario("waxman", size=30, seed=2, churn_events=8)
        links = {
            frozenset((link.src, link.dst)) for link in scenario.topology.up_links()
        }
        fail_events = [e for e in scenario.churn.events if e.kind == "fail_link"]
        assert len(fail_events) == 8
        for event in fail_events:
            assert frozenset((event.src, event.dst)) in links

    def test_churn_times_are_ordered_and_spaced(self):
        schedule = link_churn_schedule(
            generate_scenario("ring", size=10).topology,
            events=4,
            start=2.0,
            spacing=0.25,
            seed=9,
        )
        times = [e.at for e in schedule.events]
        assert times == sorted(times)
        assert times[0] == 2.0 and times[-1] == pytest.approx(2.75)

    def test_restore_delay_pairs_failures_with_restores(self):
        scenario = generate_scenario(
            "grid", size=16, seed=4, churn_events=3, churn_restore_delay=1.5
        )
        kinds = [e.kind for e in scenario.churn.events]
        assert kinds.count("fail_link") == 3
        assert kinds.count("restore_link") == 3

    def test_cost_churn_schedule(self):
        schedule = cost_churn_schedule(
            generate_scenario("tree", size=20).topology, events=5, seed=1
        )
        assert len(schedule.events) == 5
        assert all(e.kind == "set_cost" for e in schedule.events)

    def test_churn_applies_to_engine(self):
        scenario = generate_scenario("tree", size=12, seed=6, churn_events=2)
        engine = DistributedEngine(path_vector_program(), scenario.topology)
        engine.seed_facts()
        scenario.churn.apply_to_engine(engine)
        trace = engine.run()
        assert trace.quiescent
        assert any(c.kind == "delete" for c in trace.state_changes)

    @pytest.mark.parametrize("hash_seed", ["0", "1", "424242"])
    def test_schedules_identical_across_hash_seeds(self, hash_seed):
        # the schedule must be a pure function of (topology, seed): run the
        # generation under different PYTHONHASHSEED values in subprocesses
        # and require byte-identical event sequences
        import os
        import subprocess
        import sys

        script = (
            "from repro.scenarios import generate_scenario\n"
            "from repro.scenarios import cost_churn_schedule, link_churn_schedule\n"
            "for family in ('tree', 'power_law'):\n"
            "    topo = generate_scenario(family, size=25, seed=13).topology\n"
            "    for schedule in (\n"
            "        link_churn_schedule(topo, events=6, seed=7, restore_delay=1.5),\n"
            "        cost_churn_schedule(topo, events=6, seed=7),\n"
            "    ):\n"
            "        for e in schedule.events:\n"
            "            print(e.at, e.kind, e.src, e.dst, e.cost)\n"
        )
        env = dict(os.environ)
        src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src_dir)
        outputs = []
        for seed in ("77", hash_seed):
            env["PYTHONHASHSEED"] = seed
            result = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        # 2 families × (6 fails + 6 restores + 6 cost changes)
        assert outputs[0].count("\n") == 2 * 18


class TestPolicies:
    @pytest.mark.parametrize("kind", POLICY_KINDS)
    def test_policy_kinds_generate(self, kind):
        topology = generate_scenario("power_law", size=12, seed=3).topology
        table = scenario_policies(kind, topology, seed=3)
        if kind == "shortest_path":
            assert not table.import_rules and not table.export_rules
        else:
            assert table.import_rules

    def test_bfs_customer_provider_covers_all_non_root_nodes(self):
        topology = generate_scenario("waxman", size=20, seed=8).topology
        pairs = bfs_customer_provider(topology)
        customers = {customer for customer, _ in pairs}
        assert len(customers) == topology.node_count - 1

    def test_policy_scenario_emits_facts(self):
        scenario = generate_scenario("tree", size=10, seed=2, policy="random_pref")
        facts = scenario.policy_fact_list()
        assert {name for name, _ in facts} == {"importPref"}
        assert len(facts) == 10 * 9


class TestCrossValidation:
    """Centralized fixpoint == distributed final state on generated scenarios."""

    FAMILIES = {
        "grid": dict(size=9, seed=1),
        "tree": dict(size=14, seed=2),
        "power_law": dict(size=10, seed=3),
    }

    @pytest.mark.parametrize("family", list(FAMILIES))
    def test_distributed_matches_centralized(self, family):
        scenario = generate_scenario(family, **self.FAMILIES[family])
        program = path_vector_program()
        engine = DistributedEngine(program, scenario.topology)
        trace = engine.run()
        assert trace.quiescent
        central = evaluate(program, scenario.link_facts())
        # the full path relation and the best costs must agree exactly; for
        # bestPath only the (source, destination, cost) projection is
        # execution-order independent — keyed replacement picks an arbitrary
        # winner among equal-cost paths (grids are full of ties)
        assert set(engine.rows("path")) == set(central.rows("path"))
        assert set(engine.rows("bestPathCost")) == set(central.rows("bestPathCost"))

        def project(rows):
            return {(r[0], r[1], r[3]) for r in rows}

        assert project(engine.rows("bestPath")) == project(central.rows("bestPath"))

    @pytest.mark.parametrize("family", list(FAMILIES))
    def test_indexed_matches_naive_on_scenarios(self, family):
        scenario = generate_scenario(family, **self.FAMILIES[family])
        program = path_vector_program()
        indexed = evaluate(program, scenario.link_facts(), use_indexes=True)
        naive = evaluate(program, scenario.link_facts(), use_indexes=False)
        assert indexed.snapshot() == naive.snapshot()

    def test_batched_engine_matches_per_tuple_engine(self):
        scenario = generate_scenario("grid", size=9, seed=4)
        program = path_vector_program()
        batched = DistributedEngine(
            program, scenario.topology, config=EngineConfig(batch_deltas=True)
        )
        batched.run()
        per_tuple = DistributedEngine(
            program,
            generate_scenario("grid", size=9, seed=4).topology,
            config=EngineConfig(batch_deltas=False),
        )
        per_tuple.run()
        assert batched.global_snapshot() == per_tuple.global_snapshot()
