"""Retraction semantics of the distributed engine.

Link failure, restore, cost change, and soft-state expiry must leave every
node's database exactly where a fresh engine started on the resulting
topology would converge — no stale best paths, no orphaned localized
(``link_d``) copies at remote nodes — across the batched, per-tuple,
compiled, and interpreted execution paths.  The
``retract_derivations=False`` knob restores the original monotonic
semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dn.engine import DistributedEngine, EngineConfig
from repro.dn.network import Topology
from repro.ndlog.parser import parse_program
from repro.protocols.pathvector import PATH_VECTOR_SOURCE
from repro.workloads.events import WorkloadScript
from repro.workloads.topologies import ring_topology


def pv_program():
    return parse_program(PATH_VECTOR_SOURCE, "pv")


def triangle() -> Topology:
    return Topology.from_edges([("a", "b", 1), ("b", "c", 2), ("a", "c", 5)])


def nonempty(snapshot: dict) -> dict:
    """Drop empty tables (touched predicates materialize empty tables that a
    fresh engine never creates; contents are what must match)."""

    return {pred: rows for pred, rows in snapshot.items() if rows}


def fresh_snapshot(topology: Topology, config=None):
    engine = DistributedEngine(pv_program(), topology, config=config)
    engine.run()
    return nonempty(engine.global_snapshot())


# ---------------------------------------------------------------------------
# Strategies: small random symmetric topologies and failure subsets
# ---------------------------------------------------------------------------

nodes = st.integers(min_value=0, max_value=4)

edges = st.lists(
    st.tuples(nodes, nodes, st.integers(min_value=1, max_value=4)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=1,
    max_size=8,
    unique_by=lambda e: frozenset(e[:2]),
)


class TestLinkFailureRetraction:
    def test_failure_matches_fresh_engine(self):
        engine = DistributedEngine(pv_program(), triangle())
        engine.seed_facts()
        engine.schedule_link_failure("a", "b", at=1.0)
        trace = engine.run()
        assert trace.quiescent
        after = triangle()
        after.fail_link("a", "b")
        assert nonempty(engine.global_snapshot()) == fresh_snapshot(after)

    def test_failure_emits_retract_messages_and_trace_kinds(self):
        engine = DistributedEngine(pv_program(), triangle())
        engine.seed_facts()
        engine.schedule_link_failure("a", "b", at=1.0)
        trace = engine.run()
        assert trace.retraction_messages()
        # the two base link tuples are deletes; derived state is retracted
        assert len(trace.changes_of_kind("delete")) == 2
        assert trace.changes_of_kind("retract")
        assert trace.retraction_count >= 2

    def test_localized_copies_are_swept_at_remote_nodes(self):
        # regression (PR 3): the ship rule sends link_d(@Z,S,C) to the other
        # endpoint; failing the link must also remove those propagated
        # copies, which live in *other* nodes' databases
        engine = DistributedEngine(pv_program(), triangle())
        engine.seed_facts()
        engine.run(until=0.5)
        assert ("b", "a", 1) in engine.node("b").db.table("link_d")
        assert ("a", "b", 1) in engine.node("a").db.table("link_d")
        engine.schedule_link_failure("a", "b", at=1.0)
        trace = engine.run()
        assert trace.quiescent
        for node_id in ("a", "b", "c"):
            for row in engine.node(node_id).rows("link_d"):
                assert {row[0], row[1]} != {"a", "b"}

    def test_no_stale_best_paths_through_dead_link(self):
        engine = DistributedEngine(pv_program(), triangle())
        engine.seed_facts()
        engine.schedule_link_failure("b", "c", at=1.0)
        engine.run()
        for row in engine.rows("bestPath"):
            path = row[2]
            hops = list(zip(path, path[1:]))
            assert ("b", "c") not in hops and ("c", "b") not in hops

    @settings(max_examples=10, deadline=None)
    @given(edge_list=edges, data=st.data())
    def test_randomized_failures_match_fresh_engine(self, edge_list, data):
        topology = Topology.from_edges(edge_list)
        count = data.draw(
            st.integers(min_value=1, max_value=len(edge_list)), label="failures"
        )
        failed = edge_list[:count]
        engine = DistributedEngine(pv_program(), topology)
        engine.seed_facts()
        for index, (src, dst, _) in enumerate(failed):
            engine.schedule_link_failure(src, dst, at=1.0 + 0.25 * index)
        trace = engine.run()
        assert trace.quiescent
        after = Topology.from_edges(edge_list)
        for src, dst, _ in failed:
            after.fail_link(src, dst)
        assert equivalent_up_to_ties(
            nonempty(engine.global_snapshot()), fresh_snapshot(after)
        )


def equivalent_up_to_ties(a: dict, b: dict) -> bool:
    """Snapshot equality modulo equal-cost tie-breaking in ``bestPath``.

    ``bestPath`` is keyed on (S, D): when several minimum-cost paths tie,
    the stored row is whichever derivation arrived last, which legitimately
    differs between an incremental run (arrival order shaped by churn
    history) and a fresh run.  Cost projections must still agree exactly and
    every stored winner must be one of the other run's valid paths.
    """

    for predicate in set(a) | set(b):
        rows_a = a.get(predicate, set())
        rows_b = b.get(predicate, set())
        if rows_a == rows_b:
            continue
        if predicate != "bestPath":
            return False
        projection = lambda rows: {(r[0], r[1], r[3]) for r in rows}  # noqa: E731
        if projection(rows_a) != projection(rows_b):
            return False
        paths = b.get("path", set())
        if not (rows_a <= paths and rows_b <= paths):
            return False
    return True


class TestRestoreAndCostChange:
    def test_fail_restore_cycle_reconverges(self):
        engine = DistributedEngine(pv_program(), ring_topology(5))
        engine.seed_facts()
        engine.schedule_link_failure(0, 1, at=1.0)
        engine.schedule_link_restore(0, 1, at=2.0)
        trace = engine.run()
        assert trace.quiescent
        assert nonempty(engine.global_snapshot()) == fresh_snapshot(ring_topology(5))

    def test_cost_change_displaces_and_matches_fresh_engine(self):
        engine = DistributedEngine(pv_program(), triangle())
        engine.seed_facts()
        engine.schedule_cost_change("a", "b", 10, at=1.0)
        trace = engine.run()
        assert trace.quiescent
        after = triangle()
        after.set_cost("a", "b", 10)
        assert nonempty(engine.global_snapshot()) == fresh_snapshot(after)

    @settings(max_examples=10, deadline=None)
    @given(edge_list=edges, data=st.data())
    def test_randomized_mixed_churn(self, edge_list, data):
        # interleaved failures, restores, and cost changes; final state must
        # match a fresh run on the final topology (up to best-path ties)
        kinds = st.sampled_from(["fail", "restore", "cost"])
        count = data.draw(st.integers(min_value=1, max_value=5), label="events")
        engine = DistributedEngine(pv_program(), Topology.from_edges(edge_list))
        engine.seed_facts()
        after = Topology.from_edges(edge_list)
        at = 1.0
        for _ in range(count):
            src, dst, _ = data.draw(st.sampled_from(edge_list), label="link")
            kind = data.draw(kinds, label="kind")
            if kind == "fail":
                engine.schedule_link_failure(src, dst, at=at)
                after.fail_link(src, dst)
            elif kind == "restore":
                engine.schedule_link_restore(src, dst, at=at)
                after.restore_link(src, dst)
            else:
                cost = data.draw(st.integers(min_value=1, max_value=5), label="cost")
                engine.schedule_cost_change(src, dst, cost, at=at)
                after.set_cost(src, dst, cost)
            at += 0.4
        trace = engine.run()
        assert trace.quiescent
        assert equivalent_up_to_ties(
            nonempty(engine.global_snapshot()), fresh_snapshot(after)
        )

    def test_workload_script_fail_restore(self):
        script = WorkloadScript()
        script.fail_link("a", "b", 1.0)
        script.restore_link("a", "b", 2.0)
        engine = DistributedEngine(pv_program(), triangle())
        engine.seed_facts()
        script.apply_to_engine(engine)
        trace = engine.run()
        assert trace.quiescent
        assert nonempty(engine.global_snapshot()) == fresh_snapshot(triangle())

    def test_workload_restore_without_link_predicate_injects_nothing(self):
        # regression (PR 3): the restore path used to inject under a guessed
        # "link" predicate while the failure path silently no-opped
        program = parse_program("alarm(@X,Y) :- trigger(@X,Y).")
        config = EngineConfig(link_predicate=None)
        engine = DistributedEngine(program, triangle(), config=config)
        engine.seed_facts()
        script = WorkloadScript()
        script.fail_link("a", "b", 0.5)
        script.restore_link("a", "b", 1.0)
        script.apply_to_engine(engine)
        engine.run()
        assert engine.rows("link") == []
        assert engine.trace.state_change_count == 0
        link = engine.topology.link("a", "b")
        assert link is not None and link.up


class TestExecutionPathMatrix:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(batch_deltas=False),
            dict(compile_rules=False),
            dict(use_indexes=False),
            dict(batch_deltas=False, compile_rules=False),
        ],
        ids=["per-tuple", "interpreted", "scan-join", "per-tuple-interpreted"],
    )
    def test_failure_retraction_across_paths(self, overrides):
        config = EngineConfig(**overrides)
        engine = DistributedEngine(pv_program(), triangle(), config=config)
        engine.seed_facts()
        engine.schedule_link_failure("a", "b", at=1.0)
        trace = engine.run()
        assert trace.quiescent
        after = triangle()
        after.fail_link("a", "b")
        assert nonempty(engine.global_snapshot()) == fresh_snapshot(after, config=config)


class TestFifoOpOrdering:
    SOURCE = """
    materialize(k, infinity, infinity, keys(1)).
    r1 k(@N,V) :- a(@N,V).
    r2 b(@M,V) :- k(@N,V), link(@N,M,C).
    """

    @pytest.mark.parametrize(
        "overrides",
        [dict(), dict(batch_deltas=False), dict(compile_rules=False)],
        ids=["batched", "per-tuple", "interpreted"],
    )
    def test_same_flush_assert_then_retract_cancels_in_order(self, overrides):
        # regression (PR 3 review): a keyed displacement at node 1 ships an
        # assert of b(2,v1) and then its retract; both land in one flush at
        # node 2.  A deletions-first batch round processed the retract
        # before the assert (ignored as stale), leaving b(2,v1) forever —
        # ops must be processed in FIFO arrival order
        engine = DistributedEngine(
            parse_program(self.SOURCE, "fifo"),
            Topology.from_edges([(1, 2, 1)]),
            config=EngineConfig(**overrides),
        )
        engine.seed_facts()
        engine.schedule_fact("a", (1, "v1"), at=1.0)
        engine.schedule_fact("a", (1, "v2"), at=1.0)
        trace = engine.run()
        assert trace.quiescent
        assert engine.node(2).rows("b") == [(2, "v2")]
        assert engine.node(1).rows("k") == [(1, "v2")]


class TestMonotonicKnob:
    def test_retract_derivations_false_restores_stale_behaviour(self):
        config = EngineConfig(retract_derivations=False)
        engine = DistributedEngine(pv_program(), triangle(), config=config)
        engine.seed_facts()
        engine.schedule_link_failure("a", "b", at=1.0)
        engine.run()
        after = triangle()
        after.fail_link("a", "b")
        # the base tuples are gone but derived state survives (monotonic)
        assert ("a", "b", 1) not in engine.node("a").db.table("link")
        fresh = fresh_snapshot(after)
        assert set(engine.rows("bestPath")) - fresh.get("bestPath", set())
        assert not engine.trace.retraction_messages()


class TestSoftStateRetraction:
    SOURCE = """
    materialize(ping, 2, infinity, keys(1,2)).
    materialize(echo, infinity, infinity, keys(1,2)).
    e1 echo(@X,Y) :- ping(@X,Y).
    ping(@1,2).
    """

    def test_expiry_retracts_derived_hard_state(self):
        # echo is hard state derived from soft-state ping: when ping expires
        # without a refresh, the retraction pipeline must withdraw echo too
        program = parse_program(self.SOURCE, "soft")
        topo = Topology.from_edges([(1, 2)])
        config = EngineConfig(link_predicate=None, expiry_scan_interval=0.5)
        engine = DistributedEngine(program, topo, config=config)
        engine.run(until=10.0)
        assert engine.node(1).rows("ping") == []
        assert engine.node(1).rows("echo") == []
        expired = engine.trace.changes_of_kind("expire")
        assert any(c.predicate == "ping" for c in expired)
        assert any(
            c.predicate == "echo" for c in engine.trace.changes_of_kind("retract")
        )

    def test_refresshed_soft_state_keeps_derivations(self):
        program = parse_program(self.SOURCE, "soft")
        topo = Topology.from_edges([(1, 2)])
        config = EngineConfig(
            link_predicate=None, refresh_interval=1.0, expiry_scan_interval=0.5
        )
        engine = DistributedEngine(program, topo, config=config)
        engine.run(until=6.0)
        assert (1, 2) in engine.node(1).db.table("ping")
        assert (1, 2) in engine.node(1).db.table("echo")


class TestConsistencySweep:
    """Cross-round support-count asymmetry (fixed by the settle-end sweep).

    ``bestPath`` accrues supports from two join directions of ``r4`` (its
    ``path`` delta and its aggregate ``bestPathCost`` delta), but the
    aggregate retraction always fires after the paths were physically
    removed, stranding one support.  The consistency sweep force-retracts
    stored rows that are no longer locally derivable, so isolating a node
    leaves no ghost best routes (a hypothesis-found seed-era bug).
    """

    EDGES = [(0, 1, 1), (0, 2, 1), (0, 3, 4), (0, 4, 2), (2, 3, 1), (3, 4, 2)]

    @pytest.mark.parametrize("batch_deltas", [True, False])
    def test_isolating_a_node_leaves_no_ghost_best_paths(self, batch_deltas):
        # failing 0-1 isolates node 1 entirely: every route to/from it must go
        engine = DistributedEngine(
            pv_program(),
            Topology.from_edges(self.EDGES),
            config=EngineConfig(batch_deltas=batch_deltas),
        )
        engine.seed_facts()
        engine.schedule_link_failure(0, 1, at=1.0)
        trace = engine.run()
        assert trace.quiescent
        after = Topology.from_edges(self.EDGES)
        after.fail_link(0, 1)
        assert equivalent_up_to_ties(
            nonempty(engine.global_snapshot()), fresh_snapshot(after)
        )
        for predicate in ("path", "bestPath", "bestPathCost"):
            assert not [r for r in engine.rows(predicate) if 1 in r[:2]]

    def test_sweep_records_retract_kinds(self):
        engine = DistributedEngine(pv_program(), Topology.from_edges(self.EDGES))
        engine.seed_facts()
        engine.schedule_link_failure(0, 1, at=1.0)
        trace = engine.run()
        # the swept ghost rows surface as ordinary derived-state retractions
        swept = [
            c for c in trace.changes_of_kind("retract") if c.predicate == "bestPath"
        ]
        assert swept
