"""Lossy channels × retraction: soft-state expiry bounds stale state.

The retraction subsystem ships ``retract`` messages to withdraw remotely
stored derivations; on a lossy channel those messages can be dropped, and a
node whose retract never arrives keeps the stale derivation forever — unless
the state is *soft*, the paper's own remedy (§4.2): un-refreshed rows expire
within their lifetime, so dropped retractions bound staleness instead of
leaking it.

These tests pin that contract across the batched and per-tuple execution
paths:

* ``loss=0`` on a loss-configured channel is exactly the reliable-channel
  fixpoint (and byte-equal across batched/per-tuple);
* with an adversarial channel dropping **every** retract message, hard state
  goes permanently stale while soft state is clean again within
  ``lifetime + scan interval`` of the failure;
* randomized seeds/topologies (hypothesis) keep the soft-state bound across
  probabilistic loss, where both asserts and retracts are dropped.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dn.engine import DistributedEngine, EngineConfig
from repro.ndlog.parser import parse_program
from repro.protocols.pathvector import PATH_VECTOR_SOURCE
from repro.scenarios import generate_scenario


LIFETIME = 2.0
SCAN = 0.5

SOFT_PV_SOURCE = PATH_VECTOR_SOURCE.replace(
    "materialize(link, infinity, infinity, keys(1,2)).",
    f"materialize(link, {LIFETIME:g}, infinity, keys(1,2)).",
).replace(
    "materialize(path, infinity, infinity, keys(1,2,3)).",
    f"materialize(path, {LIFETIME:g}, infinity, keys(1,2,3)).",
)


def pv_program(soft: bool):
    return parse_program(SOFT_PV_SOURCE if soft else PATH_VECTOR_SOURCE, "pv")


class RetractDroppingEngine(DistributedEngine):
    """An engine whose channel loses every ``retract`` message — the
    adversarial worst case for distributed deletion."""

    def _send(self, src, dst, predicate, values, kind="assert"):
        if kind == "retract":
            self.nodes[src].stats.messages_sent += 1
            self.trace.record_message(
                self.scheduler.now, src, dst, predicate, values,
                delivered=False, kind=kind,
            )
            self.channel.dropped += 1
            return
        super()._send(src, dst, predicate, values, kind=kind)


def dead_edge_rows(engine, src, dst) -> list[tuple]:
    """Path tuples whose vector still traverses the failed edge."""

    stale = []
    for row in engine.rows("path") + engine.rows("bestPath"):
        vector = row[2]
        hops = list(zip(vector, vector[1:]))
        if (src, dst) in hops or (dst, src) in hops:
            stale.append(row)
    return stale


REFRESH = 2.5  # > LIFETIME: base facts expire and re-announce, so derived
#              soft state oscillates through expiry/re-derivation cycles and
#              live routes keep coming back while dead ones cannot


def run_with_failure(engine_cls, *, soft, batch, seed=0, size=8, until=11.0):
    scenario = generate_scenario("tree", size=size, seed=seed)
    link = scenario.topology.up_links()[0]
    config = EngineConfig(
        seed=seed,
        batch_deltas=batch,
        expiry_scan_interval=SCAN,
        # re-announcement keeps live soft state coming back; stale rows
        # whose sources died are never re-announced and must expire
        refresh_interval=REFRESH if soft else None,
    )
    engine = engine_cls(pv_program(soft), scenario.topology, config=config)
    engine.seed_facts()
    engine.run(until=1.0)
    engine.schedule_link_failure(link.src, link.dst, at=1.0)
    engine.run(until=until)
    return engine, link


class TestLossZeroMatchesReliable:
    @pytest.mark.parametrize("batch", [True, False])
    def test_loss_zero_equals_reliable_fixpoint(self, batch):
        reliable = generate_scenario("tree", size=10, seed=5)
        lossy_configured = generate_scenario("tree", size=10, seed=5, loss=0.0)
        config = EngineConfig(seed=5, batch_deltas=batch)
        a = DistributedEngine(pv_program(False), reliable.topology, config=config)
        a.run()
        b = DistributedEngine(
            pv_program(False), lossy_configured.topology, config=config
        )
        b.run()
        assert a.trace.quiescent and b.trace.quiescent
        assert a.global_snapshot() == b.global_snapshot()
        assert b.channel.dropped == 0

    def test_per_tuple_loss_zero_also_matches(self):
        reliable = generate_scenario("tree", size=10, seed=5)
        a = DistributedEngine(
            pv_program(False),
            reliable.topology,
            config=EngineConfig(seed=5, batch_deltas=False),
        )
        a.run()
        b = DistributedEngine(
            pv_program(False),
            generate_scenario("tree", size=10, seed=5, loss=0.0).topology,
            config=EngineConfig(seed=5, batch_deltas=True),
        )
        b.run()
        # loss=0 on either execution path is exactly the reliable fixpoint
        assert a.global_snapshot() == b.global_snapshot()


class TestDroppedRetractions:
    @pytest.mark.parametrize("batch", [True, False])
    def test_hard_state_goes_permanently_stale(self, batch):
        engine, link = run_with_failure(RetractDroppingEngine, soft=False, batch=batch)
        assert engine.channel.dropped > 0
        assert dead_edge_rows(engine, link.src, link.dst)

    @pytest.mark.parametrize("batch", [True, False])
    def test_soft_state_expiry_bounds_the_staleness(self, batch):
        engine, link = run_with_failure(RetractDroppingEngine, soft=True, batch=batch)
        assert engine.channel.dropped > 0  # retractions were genuinely lost
        # by failure + lifetime + scan the stale rows must have expired
        assert engine.scheduler.now >= 1.0 + LIFETIME + SCAN
        assert dead_edge_rows(engine, link.src, link.dst) == []
        # non-vacuous: live routes were re-announced and are present
        assert engine.rows("path")
        assert any(
            c.predicate == "path" for c in engine.trace.changes_of_kind("expire")
        )

    def test_staleness_clears_within_the_expiry_bound(self):
        # sample the stale set over time: present right after the failure,
        # gone once lifetime + one scan interval have elapsed
        engine, link = run_with_failure(
            RetractDroppingEngine, soft=True, batch=True, until=1.25
        )
        assert dead_edge_rows(engine, link.src, link.dst)
        engine.run(until=1.0 + LIFETIME + 2 * SCAN)
        assert dead_edge_rows(engine, link.src, link.dst) == []


class TestLossySoftStateProperty:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_probabilistic_loss_respects_expiry_bound(self, seed):
        """Under real probabilistic loss (asserts and retracts both dropped)
        the soft-state engine never holds a dead-edge row at the end, on
        either execution path."""

        for batch in (True, False):
            scenario = generate_scenario("tree", size=8, seed=seed, loss=0.3)
            link = scenario.topology.up_links()[0]
            engine = DistributedEngine(
                pv_program(True),
                scenario.topology,
                config=EngineConfig(
                    seed=seed,
                    batch_deltas=batch,
                    expiry_scan_interval=SCAN,
                    refresh_interval=REFRESH,
                ),
            )
            engine.seed_facts()
            engine.run(until=1.0)
            engine.schedule_link_failure(link.src, link.dst, at=1.0)
            engine.run(until=6.0)
            assert dead_edge_rows(engine, link.src, link.dst) == []
