"""Supervised shard workers: crash-kill/respawn/resync with byte-identical
fingerprints, hang detection, restart budgets, and close() robustness.

The acceptance property: a :class:`~repro.dn.shard.ShardedEngine` run in
which any single worker is killed at any request index completes with a
``Trace.fingerprint()`` byte-identical to the undisturbed run — the
coordinator respawns the dead worker and resyncs its partition from the
replica tables, so the fault leaves no observable residue.
"""

import pytest

from repro.bgp.generator import policy_path_vector_program
from repro.dn import (
    EngineConfig,
    Fault,
    FaultPlan,
    ShardedEngine,
    create_engine,
)
from repro.dn.faults import ANY_SCOPE
from repro.dn.shard import ProcessShardClient, ShardCrash
from repro.fvn.monitors import schema_for_program, standard_monitors
from repro.ndlog.ast import MaterializeDecl, NDlogError
from repro.scenarios import generate_scenario


def soften_links(program, lifetime: float = 3.0):
    decl = program.materialized["link"]
    program.materialized["link"] = MaterializeDecl(
        "link", lifetime, decl.max_size, decl.keys
    )
    return program


def execute(
    *,
    shards=3,
    faults=None,
    seed=0,
    batch_deltas=True,
    retract_derivations=True,
    soft=False,
    transport="inline",
    shard_restarts=2,
    shard_timeout=None,
    until=12.0,
):
    """One sharded run (optionally under a fault plan) → observables."""

    scenario = generate_scenario(
        "tree",
        size=12,
        seed=seed,
        policy="gao_rexford",
        churn_events=2,
        churn_restore_delay=1.0,
        loss=0.01,
    )
    program = policy_path_vector_program()
    if soft:
        program = soften_links(program)
    config = EngineConfig(
        seed=seed,
        shards=shards,
        shard_transport=transport,
        shard_restarts=shard_restarts,
        shard_timeout=shard_timeout,
        batch_deltas=batch_deltas,
        retract_derivations=retract_derivations,
        refresh_interval=1.5 if soft else None,
    )
    engine = create_engine(program, scenario.topology, config=config)
    assert isinstance(engine, ShardedEngine)
    if faults is not None:
        engine.inject_faults(faults)
    monitors = standard_monitors(schema_for_program(program))
    for monitor in monitors:
        engine.attach_monitor(monitor)
    if scenario.churn is not None:
        scenario.churn.apply_to_engine(engine)
    try:
        trace = engine.run(until=until, extra_facts=scenario.policy_fact_list())
        engine.finalize_monitors()
        engine.validate_shards()
        return {
            "fingerprint": trace.fingerprint(),
            "quiescent": trace.quiescent,
            "monitors_ok": all(monitor.ok for monitor in monitors),
            "restarts": list(engine.shard_restarts),
            "injected": engine.fault_injector.fired() if faults is not None else [],
        }
    finally:
        engine.close()


class TestKillResyncIdentity:
    """Worker kills leave no fingerprint residue, across the config matrix."""

    @pytest.mark.parametrize("batch", [True, False], ids=["batched", "per-tuple"])
    @pytest.mark.parametrize(
        "retract", [True, False], ids=["retraction", "monotonic"]
    )
    def test_kill_mid_fixpoint_matches_fault_free(self, batch, retract):
        control = execute(batch_deltas=batch, retract_derivations=retract)
        faulted = execute(
            batch_deltas=batch,
            retract_derivations=retract,
            faults=FaultPlan((Fault(kind="kill_worker", scope=ANY_SCOPE, at=5),)),
        )
        assert faulted["injected"], "the fault never fired"
        assert sum(faulted["restarts"]) >= 1
        assert faulted["fingerprint"] == control["fingerprint"]
        assert faulted["monitors_ok"]

    @pytest.mark.parametrize("at", [1, 2, 9, 25])
    def test_kill_at_many_request_indexes(self, at):
        control = execute()
        faulted = execute(
            faults=FaultPlan((Fault(kind="kill_worker", scope=ANY_SCOPE, at=at),))
        )
        assert faulted["injected"]
        assert faulted["fingerprint"] == control["fingerprint"]

    @pytest.mark.parametrize("scope", [0, 1, 2])
    def test_kill_each_worker(self, scope):
        control = execute()
        faulted = execute(
            faults=FaultPlan((Fault(kind="kill_worker", scope=scope, at=3),))
        )
        assert faulted["injected"]
        assert faulted["restarts"][scope] >= 1
        assert faulted["fingerprint"] == control["fingerprint"]

    def test_multiple_kills_and_soft_state(self):
        control = execute(soft=True)
        faulted = execute(
            soft=True,
            faults=FaultPlan(
                (
                    Fault(kind="kill_worker", scope=ANY_SCOPE, at=4),
                    Fault(kind="kill_worker", scope=ANY_SCOPE, at=18),
                )
            ),
        )
        assert len(faulted["injected"]) == 2
        assert faulted["fingerprint"] == control["fingerprint"]


class TestProcessTransportSupervision:
    """Real worker processes: SIGKILL, severed pipes, hang detection."""

    def test_process_kill_and_sever_match_fault_free(self):
        control = execute(transport="process")
        faulted = execute(
            transport="process",
            faults=FaultPlan(
                (
                    Fault(kind="kill_worker", scope=ANY_SCOPE, at=3),
                    Fault(kind="sever_pipe", scope=ANY_SCOPE, at=11),
                )
            ),
        )
        assert len(faulted["injected"]) == 2
        assert faulted["fingerprint"] == control["fingerprint"]

    def test_delayed_worker_hits_timeout_and_respawns(self):
        control = execute(transport="process")
        faulted = execute(
            transport="process",
            shard_timeout=0.5,
            faults=FaultPlan(
                (Fault(kind="delay_pipe", scope=ANY_SCOPE, at=4, arg=30.0),)
            ),
        )
        assert faulted["injected"]
        assert sum(faulted["restarts"]) >= 1
        assert faulted["fingerprint"] == control["fingerprint"]


class TestRestartBudget:
    def test_budget_exhaustion_degrades_to_ndlog_error(self):
        faults = FaultPlan(
            tuple(
                Fault(kind="kill_worker", scope=0, at=at) for at in range(1, 6)
            )
        )
        with pytest.raises(NDlogError, match="crashed .* times"):
            execute(shard_restarts=0, faults=faults)

    def test_budget_covers_repeated_kills(self):
        control = execute()
        faulted = execute(
            shard_restarts=3,
            faults=FaultPlan(
                tuple(
                    Fault(kind="kill_worker", scope=0, at=at) for at in (2, 4, 6)
                )
            ),
        )
        assert len(faulted["injected"]) == 3
        assert faulted["fingerprint"] == control["fingerprint"]


class TestClientClose:
    def test_close_with_outstanding_request_does_not_hang(self):
        program = policy_path_vector_program()
        scenario = generate_scenario("tree", size=8, seed=0, policy="gao_rexford")
        config = EngineConfig(seed=0, shards=2, shard_transport="process")
        engine = create_engine(program, scenario.topology, config=config)
        try:
            client = engine._clients[0]
            assert isinstance(client, ProcessShardClient)
            client.submit("ping", ())
            # close() while the response is still outstanding must drain
            # (or abandon) it instead of deadlocking on the shutdown
            # handshake
            client.close()
            assert not client._pending
        finally:
            engine.close()

    def test_close_with_dead_worker_does_not_hang(self):
        program = policy_path_vector_program()
        scenario = generate_scenario("tree", size=8, seed=0, policy="gao_rexford")
        config = EngineConfig(seed=0, shards=2, shard_transport="process")
        engine = create_engine(program, scenario.topology, config=config)
        try:
            client = engine._clients[0]
            client.submit("ping", ())
            client.kill()
            client.close()
        finally:
            engine.close()

    def test_killed_client_raises_shard_crash(self):
        program = policy_path_vector_program()
        scenario = generate_scenario("tree", size=8, seed=0, policy="gao_rexford")
        config = EngineConfig(seed=0, shards=2, shard_transport="process")
        engine = create_engine(program, scenario.topology, config=config)
        try:
            client = engine._clients[1]
            client.kill()
            with pytest.raises(ShardCrash):
                client.call("ping", ())
        finally:
            engine.close()
