"""Determinism and partitioning of the process-sharded engine.

The sharded engine's contract is *byte-identity*: for the same program,
topology, config, and seed, :class:`~repro.dn.shard.ShardedEngine` must
produce exactly the trace, final tables, seeds, stats, and monitor reports
of the single-process :class:`~repro.dn.engine.DistributedEngine` — for
every shard count, partition strategy, and transport, across the
batched/per-tuple × retraction/monotonic config matrix, under churn, loss,
and soft-state refresh/expiry.  The hypothesis sweep uses the inline
transport (same code path minus the IPC) so each example is cheap; the
process-transport tests cover real worker processes including pickling.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.generator import policy_path_vector_program
from repro.dn import (
    DistributedEngine,
    EngineConfig,
    ShardedEngine,
    ShardError,
    Topology,
    create_engine,
    edge_cut,
    partition_nodes,
)
from repro.fvn.monitors import schema_for_program, standard_monitors
from repro.ndlog.ast import MaterializeDecl
from repro.protocols.pathvector import path_vector_program
from repro.scenarios import generate_scenario


def nonempty(snapshot: dict) -> dict:
    return {pred: rows for pred, rows in snapshot.items() if rows}


def soften_links(program, lifetime: float = 3.0):
    decl = program.materialized["link"]
    program.materialized["link"] = MaterializeDecl(
        "link", lifetime, decl.max_size, decl.keys
    )
    return program


def build_scenario(family: str, size: int, seed: int, churn: int, loss: float):
    return generate_scenario(
        family,
        size=size,
        seed=seed,
        policy="gao_rexford",
        churn_events=churn,
        churn_restore_delay=1.0,
        loss=loss,
    )


def execute(
    shards: int,
    *,
    family="tree",
    size=12,
    seed=0,
    churn=2,
    loss=0.01,
    batch_deltas=True,
    retract_derivations=True,
    soft=False,
    transport="inline",
    partition="hash",
    until=15.0,
):
    """One run → everything the determinism contract quantifies over."""

    scenario = build_scenario(family, size, seed, churn, loss)
    program = policy_path_vector_program()
    if soft:
        program = soften_links(program)
    config = EngineConfig(
        seed=seed,
        shards=shards,
        partition=partition,
        shard_transport=transport,
        batch_deltas=batch_deltas,
        retract_derivations=retract_derivations,
        refresh_interval=1.5 if soft else None,
    )
    engine = create_engine(program, scenario.topology, config=config)
    monitors = standard_monitors(schema_for_program(program))
    for monitor in monitors:
        engine.attach_monitor(monitor)
    if scenario.churn is not None:
        scenario.churn.apply_to_engine(engine)
    try:
        trace = engine.run(until=until, extra_facts=scenario.policy_fact_list())
        engine.finalize_monitors()
        if isinstance(engine, ShardedEngine):
            engine.validate_shards()
        return {
            "fingerprint": trace.fingerprint(),
            "tables": nonempty(engine.global_snapshot()),
            "seeds": dict(trace.seeds),
            "quiescent": trace.quiescent,
            "events": trace.events_processed,
            "stats": {nid: n.stats.as_dict() for nid, n in engine.nodes.items()},
            "monitors": [monitor.report() for monitor in monitors],
            "dropped": engine.channel.dropped,
        }
    finally:
        engine.close()


class TestShardDeterminism:
    """Sharded == single-process, across the whole config matrix."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        family=st.sampled_from(["tree", "power_law", "waxman"]),
        size=st.integers(min_value=6, max_value=16),
        churn=st.integers(min_value=0, max_value=3),
        loss=st.sampled_from([0.0, 0.02]),
        shards=st.sampled_from([2, 3]),
        batch_deltas=st.booleans(),
        retract_derivations=st.booleans(),
    )
    def test_sharded_equals_single_process(
        self, seed, family, size, churn, loss, shards, batch_deltas, retract_derivations
    ):
        kwargs = dict(
            family=family,
            size=size,
            seed=seed,
            churn=churn,
            loss=loss,
            batch_deltas=batch_deltas,
            retract_derivations=retract_derivations,
        )
        single = execute(1, **kwargs)
        sharded = execute(shards, **kwargs)
        assert sharded == single

    @pytest.mark.parametrize("partition", ["hash", "metis-lite"])
    def test_partition_strategy_is_semantics_free(self, partition):
        single = execute(1)
        sharded = execute(3, partition=partition)
        assert sharded == single

    def test_soft_state_refresh_and_expiry_identical(self):
        single = execute(1, soft=True, churn=2, until=10.0)
        sharded = execute(2, soft=True, churn=2, until=10.0)
        assert sharded == single
        assert single["events"] > 0

    @pytest.mark.parametrize(
        "batch_deltas,retract_derivations", [(True, True), (False, True), (True, False)]
    )
    def test_process_transport_identical(self, batch_deltas, retract_derivations):
        """Real worker processes (pickling, pipes) — still byte-identical."""

        kwargs = dict(
            size=10,
            batch_deltas=batch_deltas,
            retract_derivations=retract_derivations,
        )
        single = execute(1, **kwargs)
        sharded = execute(2, transport="process", **kwargs)
        assert sharded == single

    def test_trace_seeds_and_replayability(self):
        """Trace.seeds carry the same channel seed either way; replaying a
        sharded run's channel seed on a single-process engine reproduces
        the sharded loss pattern exactly."""

        single = execute(1, loss=0.05, seed=42)
        sharded = execute(2, loss=0.05, seed=42)
        assert sharded["seeds"] == single["seeds"]
        assert sharded["dropped"] == single["dropped"]
        replay = execute(1, loss=0.05, seed=sharded["seeds"]["channel"])
        assert replay["fingerprint"] == sharded["fingerprint"]


class TestShardedEngineApi:
    def test_create_engine_routes_on_shards(self):
        program = path_vector_program()
        topology = Topology.from_edges([("a", "b"), ("b", "c")])
        single = create_engine(program, topology, config=EngineConfig(shards=1))
        assert type(single) is DistributedEngine
        sharded = create_engine(
            program,
            topology,
            config=EngineConfig(shards=2, shard_transport="inline"),
        )
        assert isinstance(sharded, ShardedEngine)
        sharded.close()

    def test_more_shards_than_nodes(self):
        single = execute(1, size=6, churn=0)
        sharded = execute(8, size=6, churn=0)
        assert sharded == single

    def test_bad_transport_rejected(self):
        program = path_vector_program()
        topology = Topology.from_edges([("a", "b")])
        with pytest.raises(ShardError):
            ShardedEngine(
                program,
                topology,
                config=EngineConfig(shards=2, shard_transport="carrier-pigeon"),
            )

    def test_close_is_idempotent_and_state_stays_readable(self):
        scenario = build_scenario("tree", 8, 0, 0, 0.0)
        engine = create_engine(
            path_vector_program(),
            scenario.topology,
            config=EngineConfig(seed=0, shards=2, shard_transport="process"),
        )
        trace = engine.run(until=10.0)
        assert trace.quiescent
        engine.close()
        engine.close()
        # the coordinator replica remains readable after worker shutdown
        assert nonempty(engine.global_snapshot())
        assert engine.rows("bestPath")

    def test_shard_summary_reports_partition(self):
        scenario = build_scenario("tree", 12, 0, 0, 0.0)
        engine = ShardedEngine(
            path_vector_program(),
            scenario.topology,
            config=EngineConfig(shards=3, shard_transport="inline", partition="metis-lite"),
        )
        summary = engine.shard_summary()
        engine.close()
        assert summary["shards"] == 3
        assert sum(summary["sizes"]) == 12
        assert summary["partition"] == "metis-lite"
        assert summary["edge_cut"] >= 0


class TestPartitioning:
    def topo(self, family="tree", size=30, seed=1):
        return build_scenario(family, size, seed, 0, 0.0).topology

    def test_hash_partition_is_stable_and_total(self):
        topology = self.topo()
        first = partition_nodes(topology, 4, "hash")
        second = partition_nodes(topology, 4, "hash")
        assert first == second
        assert set(first) == set(topology.nodes)
        assert all(0 <= shard < 4 for shard in first.values())

    def test_metis_lite_is_balanced_and_total(self):
        topology = self.topo(size=31)
        assignment = partition_nodes(topology, 4, "metis-lite")
        assert set(assignment) == set(topology.nodes)
        sizes = [list(assignment.values()).count(s) for s in range(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_metis_lite_cuts_fewer_edges_than_hash_on_trees(self):
        topology = self.topo(size=40, seed=3)
        hashed = partition_nodes(topology, 4, "hash")
        grown = partition_nodes(topology, 4, "metis-lite")
        assert edge_cut(topology, grown) <= edge_cut(topology, hashed)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            partition_nodes(self.topo(), 2, "quantum")
        with pytest.raises(ValueError):
            partition_nodes(self.topo(), 0, "hash")
