"""Unit tests for the event scheduler and network topology."""

import pytest

from repro.dn.events import Event, EventScheduler
from repro.dn.network import Channel, Topology


class TestEventScheduler:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(0.5, Event("b", lambda: fired.append("b")))
        scheduler.schedule(0.1, Event("a", lambda: fired.append("a")))
        scheduler.schedule(0.9, Event("c", lambda: fired.append("c")))
        scheduler.run()
        assert fired == ["a", "b", "c"]
        assert scheduler.now == pytest.approx(0.9)

    def test_fifo_tie_breaking(self):
        scheduler = EventScheduler()
        fired = []
        for name in "abc":
            scheduler.schedule(1.0, Event(name, lambda n=name: fired.append(n)))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_run_until(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, Event("a", lambda: fired.append("a")))
        scheduler.schedule(5.0, Event("b", lambda: fired.append("b")))
        scheduler.run(until=2.0)
        assert fired == ["a"]
        assert scheduler.pending == 1

    def test_cannot_schedule_in_past(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, Event("a", lambda: None))
        scheduler.run()
        with pytest.raises(ValueError):
            scheduler.schedule_at(0.5, Event("late", lambda: None))

    def test_events_scheduled_during_run_are_processed(self):
        scheduler = EventScheduler()
        fired = []

        def chain():
            fired.append("first")
            scheduler.schedule(0.1, Event("second", lambda: fired.append("second")))

        scheduler.schedule(0.0, Event("first", chain))
        scheduler.run()
        assert fired == ["first", "second"]

    def test_max_events_budget(self):
        scheduler = EventScheduler()

        def reschedule():
            scheduler.schedule(0.01, Event("loop", reschedule))

        scheduler.schedule(0.0, Event("loop", reschedule))
        processed = scheduler.run(max_events=25)
        assert processed == 25


class TestTopology:
    def test_symmetric_links_and_facts(self):
        topo = Topology.from_edges([("a", "b", 3)])
        assert topo.link("a", "b").cost == 3
        assert topo.link("b", "a").cost == 3
        assert set(topo.link_facts()) == {("a", "b", 3), ("b", "a", 3)}

    def test_neighbors_and_counts(self):
        topo = Topology.from_edges([(1, 2), (2, 3)])
        assert set(topo.neighbors(2)) == {1, 3}
        assert topo.node_count == 3

    def test_fail_and_restore_link(self):
        topo = Topology.from_edges([(1, 2), (2, 3)])
        affected = topo.fail_link(1, 2)
        assert len(affected) == 2
        assert set(topo.neighbors(1)) == set()
        assert len(topo.link_facts()) == 2
        topo.restore_link(1, 2)
        assert set(topo.neighbors(1)) == {2}

    def test_set_cost(self):
        topo = Topology.from_edges([(1, 2, 1)])
        topo.set_cost(1, 2, 9)
        assert topo.link(2, 1).cost == 9

    def test_networkx_round_trip(self):
        topo = Topology.from_edges([(1, 2, 4), (2, 3, 5)])
        graph = topo.to_networkx()
        assert graph.number_of_edges() == 4  # directed both ways
        back = Topology.from_networkx(graph.to_undirected())
        assert back.link(1, 2).cost == 4

    def test_diameter(self):
        topo = Topology.from_edges([(1, 2), (2, 3), (3, 4)])
        assert topo.diameter() == 3


class TestChannel:
    def test_delay_comes_from_link(self):
        topo = Topology.from_edges([(1, 2)])
        topo.link(1, 2).delay = 0.25
        channel = Channel(topo)
        assert channel.delay(1, 2) == 0.25
        assert channel.delay(5, 6) == topo.default_delay

    def test_lossless_by_default(self):
        topo = Topology.from_edges([(1, 2)])
        channel = Channel(topo, seed=1)
        assert not any(channel.should_drop(1, 2) for _ in range(100))

    def test_lossy_channel_drops_some(self):
        topo = Topology(default_delay=0.01)
        topo.add_link(1, 2, loss=0.5)
        channel = Channel(topo, seed=42)
        drops = sum(channel.should_drop(1, 2) for _ in range(200))
        assert 0 < drops < 200
        assert channel.dropped == drops
