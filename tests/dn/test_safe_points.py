"""Safe-point guards: engine-external updates must land between events.

Mid-fixpoint the database is deliberately inconsistent (deletion deltas
fire against the old tables, aggregate memos lag the rows), so
``inject_fact`` / ``delete_fact`` / ``refresh_soft_state`` raise
``NDlogError`` while a node fixpoint is executing — across all four
execution paths (batched/per-tuple × retraction/monotonic) — and a
rejected injection leaves the trace byte-identical to an undisturbed run.
The scheduler itself refuses re-entrant ``run`` calls.
"""

import pytest

from repro.dn.engine import DistributedEngine, EngineConfig, create_engine
from repro.dn.events import Event
from repro.dn.network import Topology
from repro.ndlog.ast import NDlogError
from repro.ndlog.parser import parse_program
from repro.protocols.pathvector import PATH_VECTOR_SOURCE

FOUR_PATHS = [
    pytest.param(dict(batch_deltas=True, retract_derivations=True), id="batched-retract"),
    pytest.param(dict(batch_deltas=True, retract_derivations=False), id="batched-monotonic"),
    pytest.param(dict(batch_deltas=False, retract_derivations=True), id="pertuple-retract"),
    pytest.param(dict(batch_deltas=False, retract_derivations=False), id="pertuple-monotonic"),
]


def square() -> Topology:
    return Topology.from_edges(
        [("a", "b", 1), ("b", "c", 1), ("c", "d", 1), ("a", "d", 5)]
    )


def build_engine(**config) -> DistributedEngine:
    program = parse_program(PATH_VECTOR_SOURCE, "pv")
    return create_engine(program, square(), config=EngineConfig(seed=0, **config))


class Saboteur:
    """A monitor that tries to inject an external update from inside every
    state-change callback — exactly the mid-fixpoint entry the safe-point
    guard must refuse."""

    def __init__(self, operation: str) -> None:
        self.operation = operation
        self.attempts = 0
        self.refusals = 0
        self._engine = None

    def attach(self, engine) -> None:
        self._engine = engine

    def on_change(self, time, node, predicate, values, kind) -> None:
        engine = self._engine
        if not engine.in_fixpoint:
            return  # only probe the guarded region
        self.attempts += 1
        try:
            if self.operation == "inject":
                engine.inject_fact("link", ("a", "c", 9.0))
            elif self.operation == "delete":
                engine.delete_fact("link", ("a", "b", 1.0))
            else:
                engine.refresh_soft_state()
        except NDlogError:
            self.refusals += 1

    def on_settle(self, time, node) -> None:
        pass

    def finalize(self, time) -> None:
        pass


class TestMidFixpointRefusal:
    @pytest.mark.parametrize("config", FOUR_PATHS)
    @pytest.mark.parametrize("operation", ["inject", "delete", "refresh"])
    def test_every_path_refuses_and_trace_is_undisturbed(self, config, operation):
        clean = build_engine(**config)
        clean.run()
        clean_fingerprint = clean.trace.fingerprint()
        clean.close()

        engine = build_engine(**config)
        saboteur = Saboteur(operation)
        engine.attach_monitor(saboteur)
        # churn exercises the deletion/retraction paths mid-run as well
        engine.schedule_link_failure("a", "b", 1.0)
        engine.schedule_link_restore("a", "b", 2.0)
        engine.run()
        engine.close()

        assert saboteur.attempts > 0, "saboteur never saw a mid-fixpoint change"
        assert saboteur.refusals == saboteur.attempts

        # ... and the refused updates changed nothing: same trace as a
        # saboteur-free run with the same churn
        control = build_engine(**config)
        control.schedule_link_failure("a", "b", 1.0)
        control.schedule_link_restore("a", "b", 2.0)
        control.run()
        control.close()
        sabotaged = engine.trace.fingerprint()
        assert sabotaged == control.trace.fingerprint()
        assert sabotaged != clean_fingerprint  # the churn itself did land

    @pytest.mark.parametrize("config", FOUR_PATHS)
    def test_safe_point_updates_work_between_runs(self, config):
        engine = build_engine(**config)
        engine.run()
        assert not engine.in_fixpoint
        engine.inject_fact("link", ("a", "c", 1.0))
        engine.run()
        assert ("a", "c", 1.0) in engine.rows("link", "a")
        engine.delete_fact("link", ("a", "c", 1.0))
        engine.run()
        assert ("a", "c", 1.0) not in engine.rows("link", "a")
        engine.close()

    @pytest.mark.parametrize("config", FOUR_PATHS)
    def test_schedule_fact_delete_lands_at_its_time(self, config):
        engine = build_engine(**config)
        engine.schedule_fact_delete("link", ("a", "d", 5.0), at=1.0)
        engine.run()
        assert ("a", "d", 5.0) not in engine.rows("link", "a")
        engine.close()


class TestReentrantRun:
    def test_event_callback_driving_scheduler_is_refused(self):
        engine = build_engine()
        engine.scheduler.schedule_at(
            0.5, Event("test", lambda: engine.run(), "re-entrant run")
        )
        with pytest.raises(RuntimeError, match="re-entrant"):
            engine.run()
        engine.close()

    def test_running_flag_resets_after_refusal(self):
        engine = build_engine()
        engine.scheduler.schedule_at(
            0.5, Event("test", lambda: engine.scheduler.run(), "re-entrant run")
        )
        with pytest.raises(RuntimeError, match="re-entrant"):
            engine.run()
        assert engine.scheduler.running is False
        engine.run()  # usable again after the failed call
        assert engine.trace.quiescent
        engine.close()
