"""Unit and integration tests for the distributed execution engine."""

import pytest

from repro.dn.engine import DistributedEngine, EngineConfig
from repro.dn.network import Topology
from repro.ndlog.parser import parse_program
from repro.ndlog.seminaive import evaluate
from repro.protocols.pathvector import PATH_VECTOR_SOURCE
from repro.workloads.topologies import line_topology, ring_topology


def triangle() -> Topology:
    return Topology.from_edges([("a", "b", 1), ("b", "c", 2), ("a", "c", 5)])


class TestDistributedPathVector:
    def test_matches_centralized_fixpoint(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        engine = DistributedEngine(program, triangle())
        engine.run()
        central = evaluate(program, [("link", f) for f in triangle().link_facts()])
        assert set(engine.rows("bestPath")) == set(central.rows("bestPath"))
        assert set(engine.rows("path")) == set(central.rows("path"))

    def test_tuples_stored_at_their_location(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        engine = DistributedEngine(program, triangle())
        engine.run()
        for node_id in ("a", "b", "c"):
            for row in engine.rows("bestPath", node_id):
                assert row[0] == node_id

    def test_trace_records_messages_and_quiescence(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        engine = DistributedEngine(program, triangle())
        trace = engine.run()
        assert trace.quiescent
        assert trace.message_count > 0
        assert trace.message_count == len(trace.messages)
        assert engine.total_messages() == trace.message_count
        assert trace.state_change_count > 0

    def test_larger_ring_converges(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        engine = DistributedEngine(program, ring_topology(6))
        trace = engine.run()
        assert trace.quiescent
        # every node knows a best path to every other node
        rows = engine.rows("bestPath")
        assert len(rows) == 6 * 5

    def test_message_delay_affects_convergence_time(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        slow_topo = line_topology(4, delay=0.5)
        fast_topo = line_topology(4, delay=0.01)
        slow = DistributedEngine(program, slow_topo).run()
        fast = DistributedEngine(program, fast_topo).run()
        assert slow.last_change_time() > fast.last_change_time()

    def test_event_budget_prevents_runaway(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        config = EngineConfig(max_events=10)
        engine = DistributedEngine(program, ring_topology(6), config=config)
        trace = engine.run()
        assert not trace.quiescent
        assert trace.events_processed <= 10


class TestDynamics:
    def test_cost_change_triggers_rederivation(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        engine = DistributedEngine(program, triangle())
        engine.seed_facts()
        engine.schedule_cost_change("a", "b", 0.5, at=1.0)
        trace = engine.run()
        changes_after = [c for c in trace.state_changes if c.time >= 1.0]
        assert changes_after  # the cheaper link produced new derivations

    def test_link_failure_removes_link_fact(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        engine = DistributedEngine(program, triangle())
        engine.seed_facts()
        engine.schedule_link_failure("a", "b", at=1.0)
        engine.run()
        assert ("a", "b", 1) not in engine.node("a").db.table("link")
        deletes = [c for c in engine.trace.state_changes if c.kind == "delete"]
        assert len(deletes) == 2

    def test_injected_fact_processed(self):
        program = parse_program("alarm(@X,Y) :- trigger(@X,Y).")
        topo = Topology.from_edges([(1, 2)])
        engine = DistributedEngine(program, topo, config=EngineConfig(link_predicate=None))
        engine.seed_facts()
        engine.schedule_fact("trigger", (1, "fire"), at=0.5)
        engine.run()
        assert engine.rows("alarm", 1) == [(1, "fire")]

    def test_remote_head_derivation_is_shipped(self):
        # head located at the *other* endpoint: derived tuples must traverse a message
        program = parse_program("heard(@D,S) :- link(@S,D,C).")
        engine = DistributedEngine(program, Topology.from_edges([("a", "b", 1)]))
        trace = engine.run()
        assert ("b", "a") in engine.node("b").db.table("heard")
        assert trace.message_count >= 2

    def test_unknown_destination_raises(self):
        from repro.ndlog.ast import NDlogError

        program = parse_program("out(@Z,S) :- in(@S,Z).")
        topo = Topology.from_edges([(1, 2)])
        engine = DistributedEngine(program, topo, config=EngineConfig(link_predicate=None))
        engine.seed_facts(extra_facts=[("in", (1, 99))])
        with pytest.raises(NDlogError):
            engine.run()


class TestSoftStateRefresh:
    SOURCE = """
    materialize(ping, 2, infinity, keys(1,2)).
    materialize(echo, 2, infinity, keys(1,2)).
    e1 echo(@X,Y) :- ping(@X,Y).
    ping(@1,2).
    """

    def _run(self, batch_deltas: bool):
        from repro.ndlog.parser import parse_program

        program = parse_program(self.SOURCE, "softstate")
        topo = Topology.from_edges([(1, 2)])
        config = EngineConfig(
            link_predicate=None,
            refresh_interval=3.0,
            expiry_scan_interval=0.5,
            batch_deltas=batch_deltas,
        )
        engine = DistributedEngine(program, topo, config=config)
        engine.run(until=10.0)
        return engine

    def test_refresh_rederives_after_expiry_batched(self):
        # regression: with deferred flushes, a refresh after expiry used to
        # insert the base fact directly first, so the queued re-insert saw
        # no change and derived soft state was never re-derived
        engine = self._run(batch_deltas=True)
        assert (1, 2) in engine.node(1).db.table("ping")
        assert (1, 2) in engine.node(1).db.table("echo")

    def test_refresh_rederives_after_expiry_per_tuple(self):
        engine = self._run(batch_deltas=False)
        assert (1, 2) in engine.node(1).db.table("echo")
