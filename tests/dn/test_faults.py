"""The seeded fault-injection layer: plan determinism, probe counting,
wildcard scopes, and JSON round-trips."""

import pytest

from repro.dn.faults import (
    ANY_SCOPE,
    FAULT_KINDS,
    Fault,
    FaultError,
    FaultInjector,
    FaultPlan,
    load_injector,
)


class TestFault:
    def test_validation_rejects_unknown_kind(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            Fault(kind="meteor_strike")

    def test_validation_rejects_bad_ordinal(self):
        with pytest.raises(FaultError, match="positive int"):
            Fault(kind="kill_worker", at=0)

    def test_delay_needs_numeric_arg(self):
        with pytest.raises(FaultError, match="numeric"):
            Fault(kind="delay_pipe")
        Fault(kind="delay_pipe", arg=0.5)  # fine

    def test_reset_phase_validated(self):
        with pytest.raises(FaultError, match="'recv' or 'ack'"):
            Fault(kind="reset_connection", arg="midflight")
        Fault(kind="reset_connection", arg="ack")  # fine

    def test_dict_round_trip(self):
        fault = Fault(kind="delay_pipe", scope=2, at=7, arg=1.5)
        assert Fault.from_dict(fault.to_dict()) == fault


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(42, kinds=FAULT_KINDS, scopes=(0, 1, ANY_SCOPE))
        b = FaultPlan.generate(42, kinds=FAULT_KINDS, scopes=(0, 1, ANY_SCOPE))
        assert a == b
        assert a != FaultPlan.generate(43, kinds=FAULT_KINDS, scopes=(0, 1, ANY_SCOPE))

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.generate(7, kinds=("kill_worker", "reset_connection"))
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("not json{")
        with pytest.raises(FaultError, match="cannot load"):
            FaultPlan.load(path)


class TestFaultInjector:
    def test_exact_scope_counts_per_scope(self):
        plan = FaultPlan((Fault(kind="kill_worker", scope=1, at=2),))
        injector = FaultInjector(plan)
        assert injector.draw("kill_worker", 0) is None
        assert injector.draw("kill_worker", 1) is None  # scope 1's 1st probe
        assert injector.draw("kill_worker", 0) is None
        fired = injector.draw("kill_worker", 1)  # scope 1's 2nd probe
        assert fired is plan.faults[0]

    def test_wildcard_scope_counts_globally(self):
        plan = FaultPlan((Fault(kind="kill_worker", scope=ANY_SCOPE, at=3),))
        injector = FaultInjector(plan)
        assert injector.draw("kill_worker", 0) is None
        assert injector.draw("kill_worker", 1) is None
        assert injector.draw("kill_worker", 2) is not None

    def test_each_fault_fires_once(self):
        plan = FaultPlan((Fault(kind="sever_pipe", scope=ANY_SCOPE, at=1),))
        injector = FaultInjector(plan)
        assert injector.draw("sever_pipe", 0) is not None
        for probe in range(5):
            assert injector.draw("sever_pipe", probe) is None
        assert injector.pending() == []

    def test_kinds_count_independently(self):
        plan = FaultPlan((Fault(kind="sever_pipe", scope=ANY_SCOPE, at=1),))
        injector = FaultInjector(plan)
        assert injector.draw("kill_worker", 0) is None  # other kind: no fire
        assert injector.draw("sever_pipe", 0) is not None

    def test_events_record_probe_sites(self):
        plan = FaultPlan(
            (
                Fault(kind="kill_worker", scope=0, at=1),
                Fault(kind="kill_worker", scope=1, at=1),
            )
        )
        injector = FaultInjector(plan)
        injector.draw("kill_worker", 0)
        injector.draw("kill_worker", 1)
        scopes = [event["probe"]["scope"] for event in injector.fired()]
        assert scopes == [0, 1]

    def test_load_injector_accepts_plan_path_none(self, tmp_path):
        assert load_injector(None) is None
        plan = FaultPlan((Fault(kind="kill_worker"),))
        assert load_injector(plan).plan == plan
        path = tmp_path / "plan.json"
        plan.save(path)
        assert load_injector(path).plan == plan
