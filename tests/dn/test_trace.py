"""Unit tests for execution traces and node statistics."""

from repro.dn.node import Node
from repro.dn.trace import Trace
from repro.ndlog.parser import parse_program


class TestTrace:
    def _trace(self) -> Trace:
        trace = Trace()
        trace.record_change(0.1, "a", "path", ("a", "b"), "insert")
        trace.record_change(0.5, "b", "bestPath", ("b", "a"), "insert")
        trace.record_change(2.5, "a", "bestPath", ("a", "b"), "replace")
        trace.record_message(0.2, "a", "b", "path", ("a", "b"))
        trace.record_message(1.2, "b", "a", "path", ("b", "a"), delivered=False)
        trace.finished_at = 3.0
        trace.quiescent = True
        return trace

    def test_counts(self):
        trace = self._trace()
        assert trace.state_change_count == 3
        assert trace.message_count == 2
        assert trace.delivered_message_count == 1

    def test_convergence_time(self):
        trace = self._trace()
        assert trace.last_change_time() == 2.5
        assert trace.last_change_time("path") == 0.1
        assert trace.convergence_time(since=1.0) == 1.5
        assert trace.convergence_time("path", since=1.0) == 0.0

    def test_filters(self):
        trace = self._trace()
        assert len(trace.changes_for("bestPath")) == 2
        assert len(trace.changes_at("a")) == 2
        assert trace.messages_between(0.0, 1.0) == 1

    def test_histogram_and_summary(self):
        trace = self._trace()
        assert trace.message_histogram(1.0) == {0: 1, 1: 1}
        assert "quiescent" in trace.summary()


class TestNode:
    def test_insert_and_replace_statistics(self):
        program = parse_program("materialize(route, infinity, infinity, keys(1,2)).\np(@X,Y) :- route(@X,Y,C).")
        node = Node("a", program)
        assert node.insert("route", ("a", "b", 5), now=0.0)
        assert node.insert("route", ("a", "b", 3), now=0.1)  # keyed replace
        assert not node.insert("route", ("a", "b", 3), now=0.2)
        assert node.stats.tuples_inserted == 1
        assert node.stats.tuples_replaced == 1
        assert node.rows("route") == [("a", "b", 3)]

    def test_delete_statistics(self):
        program = parse_program("p(@X) :- q(@X).")
        node = Node("a", program)
        node.insert("q", ("a",), 0.0)
        assert node.delete("q", ("a",))
        assert node.stats.tuples_deleted == 1
        assert node.snapshot()["q"] == set()
