"""Unit tests for component models and the component→NDlog translation (arc 3)."""

import pytest

from repro.fvn.components import (
    Component,
    ComponentConstraint,
    ComponentError,
    CompositeComponent,
    Port,
)
from repro.fvn.logic_to_ndlog import (
    SchemaAnnotation,
    check_translation_equivalence,
    component_to_rules,
    composite_to_program,
)
from repro.logic.formulas import eq
from repro.logic.terms import Var, func
from repro.ndlog.seminaive import evaluate


def doubler() -> Component:
    """t1: O = 2 * I"""

    return Component(
        name="t1",
        inputs=(Port("i1", ("X",)),),
        outputs=(Port("o1", ("Y",)),),
        constraints=(ComponentConstraint(eq(Var("Y"), func("*", "X", 2)), "Y = 2X"),),
        transform=lambda i1: (i1[0] * 2,),
    )


def incrementer() -> Component:
    """t2: O = I + 1"""

    return Component(
        name="t2",
        inputs=(Port("i2", ("A",)),),
        outputs=(Port("o2", ("B",)),),
        constraints=(ComponentConstraint(eq(Var("B"), func("+", "A", 1)), "B = A + 1"),),
        transform=lambda i2: (i2[0] + 1,),
    )


def adder() -> Component:
    """t3: O = I1 + I2 (the two-input component of Figure 3)."""

    return Component(
        name="t3",
        inputs=(Port("ia", ("U",)), Port("ib", ("V",))),
        outputs=(Port("oc", ("W",)),),
        constraints=(ComponentConstraint(eq(Var("W"), func("+", "U", "V")), "W = U + V"),),
        transform=lambda ia, ib: (ia[0] + ib[0],),
    )


def figure3_composite() -> CompositeComponent:
    """The paper's Figure 3: tc = t3(t1(I1), t2(I2))."""

    tc = CompositeComponent("tc")
    tc.add(doubler())
    tc.add(incrementer())
    tc.add(adder())
    tc.connect("t1", "o1", "t3", "ia")
    tc.connect("t2", "o2", "t3", "ib")
    return tc


class TestComponents:
    def test_duplicate_port_rejected(self):
        with pytest.raises(ComponentError):
            Component("bad", (Port("p", ("X",)), Port("p", ("Y",))), ())

    def test_atomic_run(self):
        assert doubler().run(i1=(3,)) == {"o1": (6,)}

    def test_run_requires_inputs_and_transform(self):
        with pytest.raises(ComponentError):
            doubler().run()
        spec_only = Component("s", (Port("i", ("X",)),), (Port("o", ("Y",)),))
        with pytest.raises(ComponentError):
            spec_only.run(i=(1,))

    def test_inductive_definition_shape(self):
        definition = doubler().inductive_definition()
        assert definition.predicate == "t1"
        assert [v.name for v in definition.params] == ["X", "Y"]
        assert len(definition.clauses) == 1

    def test_composite_wiring_validation(self):
        tc = CompositeComponent("tc")
        tc.add(doubler())
        with pytest.raises(ComponentError):
            tc.connect("t1", "o1", "missing", "i")
        with pytest.raises(ComponentError):
            tc.connect("t1", "bogus", "t1", "i1")

    def test_composite_external_ports(self):
        tc = figure3_composite()
        external_in = {(c, p.name) for c, p in tc.external_inputs()}
        external_out = {(c, p.name) for c, p in tc.external_outputs()}
        assert external_in == {("t1", "i1"), ("t2", "i2")}
        assert external_out == {("t3", "oc")}

    def test_composite_run_matches_arithmetic(self):
        outputs = figure3_composite().run(i1=(3,), i2=(4,))
        assert outputs == {"t3.oc": (11,)}  # 2*3 + (4+1)

    def test_cyclic_wiring_detected(self):
        a = Component("a", (Port("i", ("X",)),), (Port("o", ("Y",)),), transform=lambda i: (i[0],))
        b = Component("b", (Port("i", ("X",)),), (Port("o", ("Y",)),), transform=lambda i: (i[0],))
        tc = CompositeComponent("loop")
        tc.add(a)
        tc.add(b)
        tc.connect("a", "o", "b", "i")
        tc.connect("b", "o", "a", "i")
        with pytest.raises(ComponentError):
            tc.topological_order()

    def test_composite_theory_definitions(self):
        theory = figure3_composite().theory()
        assert set(theory.definitions.predicates()) == {"t1", "t2", "t3", "tc"}
        # the composite definition hides internal wires behind existentials
        tc_def = theory.definitions.get("tc")
        assert tc_def.clauses[0].exists_vars


class TestTranslationToNDlog:
    def test_atomic_component_rule_shape(self):
        rules = component_to_rules(doubler())
        assert len(rules) == 1
        rule = rules[0]
        assert rule.head.predicate == "t1_out_o1"
        assert rule.body_literals[0].predicate == "t1_in_i1"
        assert rule.assignments  # Y = 2X became an assignment

    def test_figure3_program_matches_paper_translation(self):
        program = composite_to_program(figure3_composite())
        heads = {r.head.predicate for r in program.rules}
        assert heads == {"t1_out_o1", "t2_out_o2", "t3_out_oc"}
        t3_rule = next(r for r in program.rules if r.head.predicate == "t3_out_oc")
        body_preds = set(t3_rule.body_predicates())
        assert body_preds == {"t1_out_o1", "t2_out_o2"}

    def test_generated_program_evaluates_correctly(self):
        program = composite_to_program(figure3_composite())
        db = evaluate(program, [("tc_in_i1", (3,)), ("tc_in_i2", (4,))])
        assert db.rows("t3_out_oc") == [(11,)]

    def test_translation_equivalence_checker(self):
        result = check_translation_equivalence(figure3_composite(), {"i1": (5,), "i2": (7,)})
        assert result.matches
        assert result.component_outputs["t3.oc"] == (18,)

    def test_schema_annotation_sets_location(self):
        schema = SchemaAnnotation(default_attribute="X")
        rules = component_to_rules(doubler(), schema=schema)
        assert rules[0].body_literals[0].location == 0

    def test_unsupported_constraint_rejected(self):
        from repro.logic.formulas import disj
        from repro.ndlog.ast import NDlogError

        weird = Component(
            "w",
            (Port("i", ("X",)),),
            (Port("o", ("Y",)),),
            constraints=(ComponentConstraint(disj(eq(Var("Y"), 1), eq(Var("Y"), 2))),),
        )
        with pytest.raises(NDlogError):
            component_to_rules(weird)
