"""Unit tests for the soft-state rewrite, transition system, model checker,
and the end-to-end FVN framework."""


from repro.bgp.policy import shortest_path_policies
from repro.bgp.model import bgp_model
from repro.fvn.framework import FVN
from repro.fvn.linear import TransitionSystem
from repro.fvn.modelcheck import (
    check_eventually_expires,
    check_invariant,
    check_reachable,
)
from repro.fvn.properties import route_optimality, standard_property_suite
from repro.fvn.soft_state_rewrite import RewriteMetrics, rewrite_soft_state
from repro.metarouting import bgp_system, safe_bgp_system
from repro.protocols.heartbeat import heartbeat_facts, heartbeat_program
from repro.protocols.pathvector import path_vector_program
from repro.workloads.topologies import line_topology


class TestSoftStateRewrite:
    def test_hard_state_program_is_unchanged(self):
        rewrite = rewrite_soft_state(path_vector_program())
        assert rewrite.soft_predicates == ()
        assert rewrite.blowup()["attributes"] == 1.0

    def test_heartbeat_rewrite_adds_timestamps(self):
        rewrite = rewrite_soft_state(heartbeat_program())
        assert set(rewrite.soft_predicates) == {"heartbeat", "alive", "reachableAlive"}
        rewritten = rewrite.rewritten
        hb_rule = next(r for r in rewritten.rules if r.name == "hb1")
        assert hb_rule.head.arity == 4  # S, N, Tins, Ttl
        assert any("Tnow" in str(item) for item in hb_rule.body)
        # rewritten tables are hard state
        assert all(not d.is_soft_state for d in rewritten.materialized.values())

    def test_rewrite_is_heavyweight(self):
        """The paper calls the encoding 'heavy-weight and cumbersome' — the
        rewrite must measurably inflate the program."""

        rewrite = rewrite_soft_state(heartbeat_program())
        blowup = rewrite.blowup()
        assert blowup["attributes"] > 1.3
        assert blowup["conditions"] > 1.0 or blowup["assignments"] > 1.0
        assert "soft-state rewrite" in rewrite.summary()

    def test_rewritten_program_still_checks(self):
        rewrite = rewrite_soft_state(heartbeat_program())
        rewrite.rewritten.check()
        metrics = RewriteMetrics.of(rewrite.rewritten)
        assert metrics.rules == len(heartbeat_program().rules)


class TestTransitionSystemAndModelChecking:
    def test_rule_firings_produce_new_facts(self):
        system = TransitionSystem(heartbeat_program(), linear_predicates=())
        state = system.initial_state(heartbeat_facts([("a", "b")]))
        successors = list(system.successors(state))
        fired = [t for t in successors if t.kind == "fire"]
        assert any(t.produced[0][0] == "alive" for t in fired)
        assert any(t.kind == "tick" for t in successors)

    def test_reachability_of_derived_fact(self):
        system = TransitionSystem(heartbeat_program(), linear_predicates=())
        result = check_reachable(
            system,
            lambda s: s.holds("reachableAlive", ("a", "c")),
            extra_facts=heartbeat_facts([("a", "b"), ("b", "c")]),
            max_states=500,
            max_depth=10,
        )
        assert result.holds
        assert result.trace  # a witness trace is produced

    def test_invariant_violation_produces_counterexample(self):
        system = TransitionSystem(heartbeat_program(), linear_predicates=())
        result = check_invariant(
            system,
            lambda s: not s.holds("alive", ("a", "b")),
            extra_facts=heartbeat_facts([("a", "b")]),
            max_states=200,
            max_depth=5,
        )
        assert not result.holds
        assert result.witness is not None

    def test_soft_state_eventually_expires_without_refresh(self):
        system = TransitionSystem(heartbeat_program())
        result = check_eventually_expires(
            system, "heartbeat", extra_facts=heartbeat_facts([("a", "b")]), max_ticks=10
        )
        assert result.holds

    def test_hard_state_does_not_expire(self):
        system = TransitionSystem(heartbeat_program())
        result = check_eventually_expires(
            system, "neighbor", extra_facts=heartbeat_facts([("a", "b")]), max_ticks=6
        )
        assert not result.holds


class TestFrameworkPipeline:
    def test_ndlog_first_workflow(self):
        fvn = FVN("pathvector")
        fvn.use_ndlog(path_vector_program())
        for spec in standard_property_suite():
            fvn.add_property(spec)
        fvn.specify_ndlog()
        report = fvn.verify(instances=[[("link", ("a", "b", 1)), ("link", ("b", "a", 1))]])
        assert report.proved_count == len(report.verdicts)
        trace = fvn.execute(line_topology(3))
        assert trace.quiescent
        assert {1, 4, 5, 7, 8} <= set(fvn.record.exercised)

    def test_component_first_workflow(self):
        fvn = FVN("bgp")
        fvn.design_components(bgp_model(shortest_path_policies()))
        fvn.specify_components()
        program = fvn.generate_ndlog()
        assert program.rules
        assert 3 in fvn.record.exercised and 2 in fvn.record.exercised

    def test_meta_model_design_phase(self):
        fvn = FVN("safe-bgp")
        result = fvn.design_algebra(safe_bgp_system(max_cost=6), sample=10)
        assert result.all_discharged
        risky = FVN("bgp-lp")
        risky_result = risky.design_algebra(bgp_system(max_cost=6), sample=12)
        assert not risky_result.all_discharged

    def test_model_check_arc(self):
        fvn = FVN("heartbeat")
        fvn.use_ndlog(heartbeat_program())
        result = fvn.model_check(
            lambda s: True,
            extra_facts=heartbeat_facts([("a", "b")]),
            max_states=100,
            max_depth=4,
        )
        assert result.holds
        assert 6 in fvn.record.exercised

    def test_report_renders(self):
        fvn = FVN("pathvector")
        fvn.use_ndlog(path_vector_program())
        fvn.add_property(route_optimality())
        fvn.verify()
        text = fvn.report()
        assert "arc 5" in text and "pathvector" in text
