"""Unit tests for the NDlog→logic compiler (arc 4) and the verification manager."""

import pytest

from repro.fvn.ndlog_to_logic import aggregate_rule_axioms, program_to_theory
from repro.fvn.properties import (
    path_implies_link,
    route_optimality,
    standard_property_suite,
)
from repro.fvn.verification import VerificationManager
from repro.logic.bmc import least_fixpoint, FiniteModel
from repro.ndlog.functions import builtin_registry
from repro.ndlog.parser import parse_program
from repro.ndlog.seminaive import evaluate
from repro.protocols.pathvector import PATH_VECTOR_SOURCE
from repro.protocols.distancevector import DISTANCE_VECTOR_SOURCE


TRIANGLE = [
    ("link", ("a", "b", 1)), ("link", ("b", "a", 1)),
    ("link", ("b", "c", 2)), ("link", ("c", "b", 2)),
    ("link", ("a", "c", 5)), ("link", ("c", "a", 5)),
]


class TestProgramToTheory:
    def test_inductive_definitions_generated(self):
        theory = program_to_theory(parse_program(PATH_VECTOR_SOURCE, "pv"))
        assert set(theory.definitions.predicates()) == {"path", "bestPath"}
        path_def = theory.definitions.get("path")
        assert len(path_def.clauses) == 2  # r1 and r2
        assert path_def.is_recursive

    def test_aggregate_axioms_generated(self):
        theory = program_to_theory(parse_program(PATH_VECTOR_SOURCE, "pv"))
        assert "bestPathCost_r3_lower_bound" in theory.axioms
        assert "bestPathCost_r3_witness" in theory.axioms
        assert "bestPathCost_r3_membership" in theory.axioms

    def test_max_aggregate_gets_upper_bound(self):
        program = parse_program("widest(@S,D,max<B>) :- l(@S,D,B).")
        rule = program.rules[0]
        axioms = aggregate_rule_axioms(rule)
        assert axioms.upper_bound is not None and axioms.lower_bound is None

    def test_generated_axioms_are_closed_formulas(self):
        theory = program_to_theory(parse_program(PATH_VECTOR_SOURCE, "pv"))
        for name, axiom in theory.all_axioms().items():
            assert axiom.free_vars() == frozenset(), name

    def test_translation_is_sound_on_finite_models(self):
        """The generated inductive definitions derive exactly the NDlog facts.

        This is the proof-theoretic/operational equivalence footnote of the
        paper checked concretely: bottom-up evaluation of the generated
        definitions over the same base facts produces the same ``path``
        relation as the NDlog evaluator.
        """

        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        theory = program_to_theory(program)
        db = evaluate(program, TRIANGLE)
        base = FiniteModel(registry=builtin_registry())
        for _, values in TRIANGLE:
            base.add_fact("link", values)
        fixpoint = least_fixpoint(theory.definitions, base)
        assert fixpoint.model.rows("path") == set(db.rows("path"))


class TestVerificationManager:
    @pytest.fixture(scope="class")
    def manager(self):
        return VerificationManager(parse_program(PATH_VECTOR_SOURCE, "pv"))

    def test_route_optimality_proof_takes_seven_interactive_steps(self, manager):
        result = manager.prove_property(route_optimality(), auto=False)
        assert result.proved
        assert result.interactive_steps == 7
        assert result.elapsed_seconds < 1.0

    def test_route_optimality_fully_automated(self, manager):
        result = manager.prove_property(route_optimality(), use_script=False, auto=True)
        assert result.proved
        assert result.interactive_steps == 0

    def test_full_property_suite_proves(self, manager):
        report = manager.verify(standard_property_suite(), instances=[TRIANGLE])
        assert report.proved_count == len(report.verdicts) == 4
        assert report.refuted_count == 0

    def test_minimal_script_measurement(self, manager):
        result, needed = manager.prove_with_minimal_script(route_optimality())
        assert result.proved
        assert needed == 0  # grind alone suffices for this property
        induction_result, induction_needed = manager.prove_with_minimal_script(path_implies_link())
        assert induction_result.proved
        assert induction_needed <= 1

    def test_counterexample_search_refutes_false_property(self, manager):
        from repro.fvn.properties import PropertySpec
        from repro.logic.formulas import atom, forall, implies, eq
        from repro.logic.terms import Var

        S, D, P, C = Var("S"), Var("D"), Var("P"), Var("C")
        bogus = PropertySpec(
            name="allCostsAreOne",
            statement=forall((S, D, P, C), implies(atom("path", S, D, P, C), eq(C, 1))),
        )
        counterexample, _ = manager.search_counterexample(bogus, [TRIANGLE])
        assert counterexample is not None

    def test_distance_vector_theory_also_verifies(self):
        manager = VerificationManager(parse_program(DISTANCE_VECTOR_SOURCE, "dv"))
        # route/cost have different arities than the path-vector schema, so the
        # generic property does not apply; instead check the bestCost bound.
        from repro.fvn.properties import PropertySpec
        from repro.logic.formulas import atom, forall, implies, le
        from repro.logic.terms import Var

        S, D, C, Z, C2 = Var("S"), Var("D"), Var("C"), Var("Z"), Var("C2")
        bound = PropertySpec(
            name="bestCostIsLowerBound",
            statement=forall(
                (S, D, C, Z, C2),
                implies(
                    atom("bestCost", S, D, C) & atom("cost", S, D, Z, C2),
                    le(C, C2),
                ),
            ),
        )
        result = manager.prove_property(bound, use_script=False)
        assert result.proved
