"""Source spans on parsed AST nodes and location-citing NDlogErrors.

Spans ride in ``compare=False`` fields so parsed programs stay
interchangeable with hand-built ones (equality, hashing, interning), and
must survive pickling — campaign workers ship programs across processes.
"""

import pickle

import pytest

from repro.ndlog.ast import NDlogError, Span
from repro.ndlog.parser import parse_program, parse_rule
from repro.protocols.pathvector import PATH_VECTOR_SOURCE

SOURCE = (
    "materialize(link, infinity, infinity, keys(1,2)).\n"
    "r1 path(@S,D) :- link(@S,D).\n"
    "r2 path(@S,D) :- link(@S,Z),\n"
    "                 path(@Z,D).\n"
)


class TestSpans:
    def test_rules_carry_line_numbers(self):
        program = parse_program(SOURCE, "t")
        r1, r2 = program.rules
        assert r1.span == Span(2, 1)
        assert r2.span.line == 3

    def test_literals_carry_columns(self):
        program = parse_program(SOURCE, "t")
        r1 = program.rules[0]
        assert r1.head.span.line == 2
        (link,) = r1.body_literals
        assert link.span.line == 2
        assert link.span.column > r1.head.span.column

    def test_multiline_rule_body_spans(self):
        program = parse_program(SOURCE, "t")
        r2 = program.rules[1]
        lines = sorted(lit.span.line for lit in r2.body_literals)
        assert lines == [3, 4]

    def test_materialize_span(self):
        program = parse_program(SOURCE, "t")
        assert program.materialized["link"].span.line == 1

    def test_span_str(self):
        assert str(Span(7, 3)) == "7:3"

    def test_spans_do_not_affect_equality_or_hash(self):
        parsed = parse_rule("r1 path(@S,D) :- link(@S,D).")
        reparsed = parse_rule("\n\n   r1 path(@S,D) :- link(@S,D).")
        assert parsed.span != reparsed.span
        assert parsed == reparsed
        assert hash(parsed.head) == hash(reparsed.head)

    def test_programs_pickle_with_spans(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        clone = pickle.loads(pickle.dumps(program))
        assert clone == program
        assert clone.rules[0].span == program.rules[0].span


class TestErrorCitations:
    def test_arity_mismatch_cites_line(self):
        source = "r1 p(@X) :- link(@X,Y).\nr2 p(@X) :- link(@X,Y,C)."
        with pytest.raises(NDlogError, match=r"line 2:"):
            parse_program(source, "t")

    def test_unsafe_rule_cites_line(self):
        with pytest.raises(NDlogError, match=r"line 1:"):
            parse_program("r1 p(@X,Y) :- q(@X).", "t")
