"""Unit tests for NDlog builtin functions and aggregate computation."""

import pytest

from repro.logic.terms import Var
from repro.ndlog.aggregates import aggregate_rows, apply_aggregate
from repro.ndlog.ast import Aggregate, HeadLiteral, NDlogError
from repro.ndlog.functions import (
    BUILTIN_FUNCTIONS,
    builtin_registry,
    f_concat_path,
    f_in_path,
    f_init,
    f_last,
    f_remove_first,
    f_size,
)


class TestPathFunctions:
    def test_init_and_concat(self):
        assert f_init("a", "b") == ("a", "b")
        assert f_concat_path("s", ("a", "b")) == ("s", "a", "b")

    def test_membership_and_size(self):
        assert f_in_path(("a", "b"), "a")
        assert not f_in_path(("a", "b"), "z")
        assert f_size(("a", "b", "c")) == 3

    def test_first_last_remove(self):
        assert f_last(("a", "b")) == "b"
        assert f_remove_first(("a", "b", "c")) == ("b", "c")
        with pytest.raises(ValueError):
            f_last(())

    def test_registry_includes_paper_names(self):
        registry = builtin_registry()
        assert "f_concatPath" in registry
        assert "f_inPath" in registry
        assert registry.call("f_init", ["x", "y"]) == ("x", "y")

    def test_registry_extension(self):
        registry = builtin_registry({"f_double": lambda x: 2 * x})
        assert registry.call("f_double", [4]) == 8
        # the shared builtin table must not be polluted
        assert "f_double" not in BUILTIN_FUNCTIONS


class TestAggregates:
    def test_apply_aggregate(self):
        assert apply_aggregate("min", [3, 1, 2]) == 1
        assert apply_aggregate("max", [3, 1, 2]) == 3
        assert apply_aggregate("count", [5, 5]) == 2
        assert apply_aggregate("count", []) == 0
        assert apply_aggregate("sum", [1, 2, 3]) == 6
        assert apply_aggregate("avg", [2, 4]) == 3

    def test_apply_aggregate_errors(self):
        with pytest.raises(NDlogError):
            apply_aggregate("median", [1])
        with pytest.raises(NDlogError):
            apply_aggregate("min", [])

    def test_aggregate_rows_groups_by_non_aggregate_positions(self):
        head = HeadLiteral("best", (Var("S"), Var("D"), Aggregate("min", Var("C"))), location=0)
        rows = [("a", "b", 5), ("a", "b", 3), ("a", "c", 7)]
        out = set(aggregate_rows(head, rows))
        assert out == {("a", "b", 3), ("a", "c", 7)}

    def test_aggregate_rows_without_aggregate_dedupes(self):
        head = HeadLiteral("p", (Var("X"),))
        assert aggregate_rows(head, [(1,), (1,), (2,)]) == [(1,), (2,)]
