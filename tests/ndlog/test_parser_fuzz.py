"""Parser fuzz and round-trip tests.

Three properties, all over hypothesis-generated input:

* **no crashes** — parsing arbitrary text either succeeds or raises the
  documented errors (:class:`ParseError` / :class:`NDlogError`), never an
  uncontrolled exception out of the tokenizer or recursive descent;
* **spans in bounds** — every span a parse attaches points inside the
  source text (1-based line within the text, column within that line);
* **round-trip stability** — rendering a parsed program (``str(program)``)
  reparses to equal rules and declarations, and the re-render is
  byte-stable (render → parse → render is a fixpoint).

The round-trip generator covers the full surface syntax: negation,
aggregates, assignments over arithmetic, comparisons (including ``!=``,
whose internal spelling ``/=`` is not surface syntax), boolean/infinity
keywords, string and symbol constants, materialize declarations, comments,
and ragged whitespace.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ndlog.ast import NDlogError
from repro.ndlog.parser import ParseError, parse_program

# ---------------------------------------------------------------------------
# Random well-formed program texts
# ---------------------------------------------------------------------------

var_names = st.sampled_from(["X", "Y", "Z", "C", "C1", "Cost2", "_W"])
const_texts = st.sampled_from(
    ["0", "7", "42", "3.5", "true", "false", "infinity", "abc", '"a b"', "'sym'"]
)
comparison_ops = st.sampled_from(["<", "<=", ">", ">=", "=", "!=", "==", "<>"])
arith_ops = st.sampled_from(["+", "-", "*"])
aggregate_fns = st.sampled_from(["min", "max", "count", "sum", "avg"])


@st.composite
def rule_texts(draw, index: int = 0):
    """One well-formed rule; body literal 0 binds every variable used."""

    vars_used = draw(st.lists(var_names, min_size=1, max_size=4, unique=True))
    loc = vars_used[0]
    base = f"e{draw(st.integers(min_value=0, max_value=2))}"
    body = [f"{base}(@{','.join(vars_used)})"]
    if draw(st.booleans()):  # extra (possibly negated) literal, vars all bound
        subset = draw(st.lists(st.sampled_from(vars_used), min_size=1, max_size=3))
        neg = "!" if draw(st.booleans()) else ""
        body.append(f"{neg}g{len(subset)}(@{','.join(subset)})")
    assigned = None
    if draw(st.booleans()):  # assignment over bound vars and constants
        assigned = "V_new"
        lhs = draw(st.sampled_from(vars_used))
        rhs = draw(st.one_of(st.sampled_from(vars_used), st.sampled_from(["1", "2"])))
        body.append(f"{assigned} = {lhs} {draw(arith_ops)} {rhs}")
    if draw(st.booleans()):  # comparison over bound terms
        left = draw(st.sampled_from(vars_used))
        right = draw(st.one_of(st.sampled_from(vars_used), const_texts))
        body.append(f"{left} {draw(comparison_ops)} {right}")
    head_args = [f"@{loc}"]
    extra = draw(st.lists(st.sampled_from(vars_used), max_size=2))
    head_args.extend(extra)
    if assigned and draw(st.booleans()):
        head_args.append(assigned)
    if draw(st.booleans()):  # aggregate over a bound variable
        head_args.append(f"{draw(aggregate_fns)}<{draw(st.sampled_from(vars_used))}>")
    sep = draw(st.sampled_from([" ", "\n  ", "  \t"]))
    comment = draw(st.sampled_from(["", "// c\n", "/* c */ ", "# c\n"]))
    return (
        f"{comment}r{index} h{index}({','.join(head_args)}) :-"
        f"{sep}{f',{sep}'.join(body)}."
    )


@st.composite
def program_texts(draw):
    count = draw(st.integers(min_value=1, max_value=5))
    chunks = []
    if draw(st.booleans()):
        lifetime = draw(st.sampled_from(["infinity", "5", "2.5"]))
        chunks.append(f"materialize(e0, {lifetime}, infinity, keys(1)).")
    for i in range(count):
        chunks.append(draw(rule_texts(i)))
    return "\n".join(chunks)


# ---------------------------------------------------------------------------
# No crashes, spans in bounds
# ---------------------------------------------------------------------------


class TestParserRobustness:
    @settings(max_examples=150, deadline=None)
    @given(text=program_texts())
    def test_well_formed_text_parses(self, text):
        # strict=False: the generator guarantees syntax, not arity
        # consistency across rules — the analyzer's loading mode
        program = parse_program(text, "fuzz", strict=False)
        assert len(program.rules) >= 1

    @settings(max_examples=200, deadline=None)
    @given(text=st.text(max_size=80))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_program(text, "garbage", strict=False)
        except (ParseError, NDlogError):
            pass  # the documented failure mode

    @settings(max_examples=200, deadline=None)
    @given(
        text=st.text(
            alphabet=st.sampled_from(list("abXY01(),.@!:-<>=+*/\"'# \n\t")),
            max_size=60,
        )
    )
    def test_syntax_soup_never_crashes(self, text):
        # denser in NDlog's own token alphabet than fully-arbitrary text,
        # so near-miss inputs (half rules, dangling operators, unclosed
        # strings/comments) are actually reached
        try:
            parse_program(text, "soup", strict=False)
        except (ParseError, NDlogError):
            pass

    @settings(max_examples=100, deadline=None)
    @given(text=program_texts())
    def test_spans_stay_in_bounds(self, text):
        program = parse_program(text, "spans", strict=False)
        lines = text.split("\n")

        def check(span):
            if span is None:
                return
            assert 1 <= span.line <= len(lines)
            assert 1 <= span.column <= len(lines[span.line - 1]) + 1

        for rule in program.rules:
            check(rule.span)
            check(rule.head.span)
            for item in rule.body:
                check(item.span)
        for decl in program.materialized.values():
            check(decl.span)


# ---------------------------------------------------------------------------
# Render round-trip
# ---------------------------------------------------------------------------


def decl_key(decl):
    return (decl.predicate, decl.lifetime, decl.max_size, decl.keys)


class TestRenderRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(text=program_texts())
    def test_reparse_of_render_is_stable(self, text):
        program = parse_program(text, "rt", strict=False)
        rendered = str(program)
        reparsed = parse_program(rendered, "rt", strict=False)
        assert reparsed.rules == program.rules
        assert list(map(decl_key, reparsed.materialized.values())) == list(
            map(decl_key, program.materialized.values())
        )
        # render is a fixpoint: a second round-trip is byte-identical
        assert str(reparsed) == rendered

    def test_internal_disequality_renders_as_surface_syntax(self):
        # the internal spelling "/=" is not in the grammar; the renderer
        # must emit "!=" (shaken out by this suite, kept as a regression)
        program = parse_program("r1 p(@X) :- e(@X,Y), X != Y.", "neq")
        rendered = str(program.rules[0])
        assert "!=" in rendered and "/=" not in rendered
        assert parse_program(rendered, "neq2").rules == program.rules

    def test_boolean_and_infinity_constants_render_as_keywords(self):
        # Const(True) used to render as Python's "True", which reparsed as
        # a *variable* — silently changing rule semantics on round-trip
        source = "r1 p(@X) :- e(@X,Y), f_inPath(Y,X) = false, Y != infinity."
        program = parse_program(source, "kw")
        rendered = str(program.rules[0])
        assert "false" in rendered and "False" not in rendered
        assert "infinity" in rendered
        assert parse_program(rendered, "kw2").rules == program.rules
