"""Differential conformance suite for the code-generation evaluator tier.

The codegen backend (:mod:`repro.ndlog.codegen`) must be *invisible*: for
any program and any fact set, the generated-source tier has to produce the
same fixpoint as the closure-compiled join plans and the AST interpreter —
across recursion, negation, aggregation, duplicate variables, constants,
keyed displacement, and interleaved insert/delete sequences — and a
distributed run with ``codegen=True`` has to be ``Trace.fingerprint()``
byte-identical to ``codegen=False`` across the batched/per-tuple ×
retraction/monotonic × 1/4-shard config matrix, soft state included.

Randomized programs and operation sequences come from hypothesis; the rule
templates mirror ``test_retraction_properties.py`` so the three tiers are
stressed on exactly the feature matrix codegen claims to cover.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.generator import policy_path_vector_program
from repro.dn import EngineConfig, ShardedEngine, create_engine
from repro.ndlog.ast import MaterializeDecl
from repro.ndlog.codegen import CodegenRule, codegen_rule
from repro.ndlog.functions import builtin_registry
from repro.ndlog.parser import parse_program
from repro.ndlog.seminaive import IncrementalEvaluator, evaluate
from repro.scenarios import generate_scenario


# ---------------------------------------------------------------------------
# Strategies (the retraction-suite feature matrix)
# ---------------------------------------------------------------------------

nodes = st.integers(min_value=0, max_value=5)

edge = st.tuples(nodes, nodes, st.integers(min_value=1, max_value=4)).filter(
    lambda e: e[0] != e[1]
)

edge_facts = st.lists(edge, min_size=0, max_size=15)

operations = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), edge), min_size=1, max_size=20
)

RULE_TEMPLATES = [
    "p(@X,Y,C) :- e(@X,Y,C).",
    "p(@X,Z,C) :- e(@X,Y,C1), p(@Y,Z,C2), C=C1+C2, C<=8.",
    "q(@X,Y) :- p(@X,Y,C), C<={bound}.",
    "r(@X,Y) :- p(@X,Y,C), e(@Y,X,C2).",
    "s(@X,Y) :- p(@X,Y,C), X!=Y.",
    "t(@X,Y) :- q(@X,Y), !e(@X,Y,{cost}).",
    "m(@X,min<C>) :- p(@X,Y,C).",
    "k(@X,count<Y>) :- q(@X,Y).",
    "c(@X,Y) :- e(@X,Y,{cost}).",
    "w(@X,S) :- p(@X,X,C), S=C*2.",
    "v(@X,max<C>) :- p(@X,Y,C), !t(@X,Y).",
    "u(@X,sum<C>) :- e(@X,Y,C), Y>={bound2}.",
]

programs = st.builds(
    lambda picks, bound, bound2, cost: "\n".join(
        [RULE_TEMPLATES[0]]
        + [
            RULE_TEMPLATES[i].format(bound=bound, bound2=bound2, cost=cost)
            for i in sorted(picks)
        ]
    ),
    st.sets(st.integers(min_value=1, max_value=len(RULE_TEMPLATES) - 1), max_size=7),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=4),
)


def nonempty(snapshot: dict) -> dict:
    return {pred: rows for pred, rows in snapshot.items() if rows}


# ---------------------------------------------------------------------------
# Three-tier fixpoint equality (centralized)
# ---------------------------------------------------------------------------


class TestThreeTierFixpointEquality:
    """codegen == compiled plan == AST interpreter, from scratch."""

    @settings(max_examples=60, deadline=None)
    @given(source=programs, facts=edge_facts)
    def test_randomized_programs(self, source, facts):
        extra = [("e", f) for f in facts]
        codegen_db = evaluate(parse_program(source, "cg"), extra, codegen=True)
        plan_db = evaluate(parse_program(source, "plan"), extra, codegen=False)
        interp_db = evaluate(parse_program(source, "ast"), extra, compile_rules=False)
        assert (
            nonempty(codegen_db.snapshot())
            == nonempty(plan_db.snapshot())
            == nonempty(interp_db.snapshot())
        )

    @settings(max_examples=20, deadline=None)
    @given(source=programs, facts=edge_facts)
    def test_scan_join_variant(self, source, facts):
        """The no-index lowering is its own generated code path."""

        extra = [("e", f) for f in facts]
        codegen_db = evaluate(
            parse_program(source, "cg"), extra, codegen=True, use_indexes=False
        )
        plan_db = evaluate(
            parse_program(source, "plan"), extra, codegen=False, use_indexes=False
        )
        assert nonempty(codegen_db.snapshot()) == nonempty(plan_db.snapshot())

    @settings(max_examples=15, deadline=None)
    @given(facts=edge_facts)
    def test_duplicate_variables_and_self_joins(self, facts):
        source = """
        d(@X,Y) :- e(@X,Y,C), e(@Y,X,C).
        g(@X) :- e(@X,X,C).
        h(@X,Y) :- e(@X,Y,C), e(@X,Y,C2), C<C2.
        """
        extra = [("e", f) for f in facts] + [("e", (2, 2, 3))]
        codegen_db = evaluate(parse_program(source, "cg"), extra, codegen=True)
        interp_db = evaluate(parse_program(source, "ast"), extra, compile_rules=False)
        assert nonempty(codegen_db.snapshot()) == nonempty(interp_db.snapshot())


# ---------------------------------------------------------------------------
# Retraction: incremental fixpoint equality under insert/delete churn
# ---------------------------------------------------------------------------


class TestRetractionConformance:
    """The codegen retraction variants (``fire_derivations``, negation
    deltas) against the compiled-plan tier and the from-scratch fixpoint."""

    @settings(max_examples=40, deadline=None)
    @given(source=programs, ops=operations)
    def test_incremental_matches_plan_and_scratch(self, source, ops):
        cg = IncrementalEvaluator(parse_program(source, "cg"), codegen=True)
        plan = IncrementalEvaluator(parse_program(source, "plan"), codegen=False)
        cg.load()
        plan.load()
        facts: set[tuple] = set()
        for op, fact in ops:
            if op == "insert":
                facts.add(fact)
                cg.insert("e", fact)
                plan.insert("e", fact)
            else:
                facts.discard(fact)
                cg.delete("e", fact)
                plan.delete("e", fact)
        scratch = evaluate(
            parse_program(source, "scratch"), [("e", f) for f in facts], codegen=True
        )
        assert (
            nonempty(cg.db.snapshot())
            == nonempty(plan.db.snapshot())
            == nonempty(scratch.snapshot())
        )

    @settings(max_examples=20, deadline=None)
    @given(ops=operations)
    def test_cyclic_support_rederivation(self, ops):
        # reach has no decreasing measure: deletions force the DRed
        # over-delete/re-derive phase through the generated full-pass code
        source = """
        reach(@X,Y) :- e(@X,Y,C).
        reach(@X,Z) :- e(@X,Y,C), reach(@Y,Z).
        """
        cg = IncrementalEvaluator(parse_program(source, "cg"), codegen=True)
        cg.load()
        facts: set[tuple] = set()
        for op, fact in ops:
            if op == "insert":
                facts.add(fact)
                cg.insert("e", fact)
            else:
                facts.discard(fact)
                cg.delete("e", fact)
        scratch = evaluate(
            parse_program(source, "scratch"), [("e", f) for f in facts], codegen=False
        )
        assert nonempty(cg.db.snapshot()) == nonempty(scratch.snapshot())

    def test_keyed_displacement(self):
        # link is keyed on (src, dst): an insert under a live key must
        # retract the displaced row's consequences through generated code
        from repro.protocols.pathvector import path_vector_program

        cg = IncrementalEvaluator(path_vector_program(), codegen=True)
        cg.load([("link", ("a", "b", 1)), ("link", ("b", "a", 1))])
        cg.apply(inserts=[("link", ("a", "b", 7)), ("link", ("b", "a", 7))])
        scratch = evaluate(
            path_vector_program(),
            [("link", ("a", "b", 7)), ("link", ("b", "a", 7))],
            codegen=False,
        )
        assert nonempty(cg.db.snapshot()) == nonempty(scratch.snapshot())


# ---------------------------------------------------------------------------
# Distributed byte-identity: codegen=True vs codegen=False
# ---------------------------------------------------------------------------


def soften_links(program, lifetime: float = 3.0):
    decl = program.materialized["link"]
    program.materialized["link"] = MaterializeDecl(
        "link", lifetime, decl.max_size, decl.keys
    )
    return program


def run_distributed(*, codegen, shards, batch_deltas, retract_derivations, soft=False):
    """One distributed run → everything the identity contract quantifies
    over (inline shard transport: same code path as processes, minus IPC)."""

    scenario = generate_scenario(
        "tree",
        size=10,
        seed=3,
        policy="gao_rexford",
        churn_events=2,
        churn_restore_delay=1.0,
        loss=0.01,
    )
    program = policy_path_vector_program()
    if soft:
        program = soften_links(program)
    config = EngineConfig(
        seed=3,
        shards=shards,
        shard_transport="inline",
        batch_deltas=batch_deltas,
        retract_derivations=retract_derivations,
        codegen=codegen,
        refresh_interval=1.5 if soft else None,
    )
    engine = create_engine(program, scenario.topology, config=config)
    if scenario.churn is not None:
        scenario.churn.apply_to_engine(engine)
    try:
        trace = engine.run(until=12.0, extra_facts=scenario.policy_fact_list())
        if isinstance(engine, ShardedEngine):
            engine.validate_shards()
        return {
            "fingerprint": trace.fingerprint(),
            "tables": nonempty(engine.global_snapshot()),
            "quiescent": trace.quiescent,
            "events": trace.events_processed,
        }
    finally:
        engine.close()


class TestDistributedFingerprintIdentity:
    """codegen flips nothing observable: trace fingerprints (the full
    ordered change stream) and final tables are byte-identical."""

    @pytest.mark.parametrize("batch_deltas", [True, False])
    @pytest.mark.parametrize("retract_derivations", [True, False])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_config_matrix(self, batch_deltas, retract_derivations, shards):
        kwargs = dict(
            shards=shards,
            batch_deltas=batch_deltas,
            retract_derivations=retract_derivations,
        )
        with_codegen = run_distributed(codegen=True, **kwargs)
        without = run_distributed(codegen=False, **kwargs)
        assert with_codegen == without
        assert with_codegen["events"] > 0

    def test_soft_state_expiry_identical(self):
        with_codegen = run_distributed(
            codegen=True,
            shards=2,
            batch_deltas=True,
            retract_derivations=True,
            soft=True,
        )
        without = run_distributed(
            codegen=False,
            shards=2,
            batch_deltas=True,
            retract_derivations=True,
            soft=True,
        )
        assert with_codegen == without


# ---------------------------------------------------------------------------
# Lowering coverage: the randomized programs actually hit the codegen tier
# ---------------------------------------------------------------------------


class TestLoweringCoverage:
    @settings(max_examples=25, deadline=None)
    @given(source=programs)
    def test_all_template_rules_lower_to_generated_code(self, source):
        """Every rule the strategies emit compiles to a CodegenRule (no
        silent fallback to the plan tier — the suite would otherwise be
        diffing the plan tier against itself)."""

        registry = builtin_registry()
        for rule in parse_program(source, "cover").rules:
            compiled = codegen_rule(rule, registry)
            assert isinstance(compiled, CodegenRule)
            assert "def " in compiled.source
