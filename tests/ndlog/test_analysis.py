"""Unit and property tests for the NDlog static analyzer (``fvn-lint``).

Covers every statically-testable diagnostic code, the stratification edge
cases from the issue (negation inside recursion, aggregate-through-cycle,
self-negation — each naming the offending rule), the bundled-programs-are-
clean invariant CI enforces, the CLI, and a hypothesis property: programs
the analyzer passes evaluate without raising on random small inputs.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.ndlog.analysis import (
    CODES,
    WARNING_CODES,
    UnsoundConfigWarning,
    analyze_program,
    check_monotonicity,
    classify_monotonicity,
    non_monotonic_predicates,
    severity_of,
)
from repro.ndlog.analysis.cli import main as lint_main
from repro.ndlog.parser import parse_program
from repro.ndlog.seminaive import evaluate
from repro.protocols.pathvector import PATH_VECTOR_SOURCE


def analyze(source: str, *, retract_derivations=None):
    program = parse_program(source, "t", strict=False)
    return analyze_program(program, retract_derivations=retract_derivations)


class TestSafetyPass:
    def test_clean_program_has_no_diagnostics(self):
        report = analyze("r1 p(@X,Y) :- q(@X,Y).")
        assert report.ok and not report.diagnostics

    def test_ndl001_unbound_head_variable(self):
        report = analyze("r1 p(@X,Y) :- q(@X).")
        (diag,) = report.by_code("NDL001")
        assert diag.is_error
        assert diag.rule == "r1"
        assert "Y" in diag.message
        assert diag.span is not None

    def test_ndl002_unbound_negated_variable(self):
        report = analyze("r1 p(@X) :- q(@X), !s(@X,Z).")
        (diag,) = report.by_code("NDL002")
        assert diag.rule == "r1" and diag.predicate == "s"

    def test_ndl003_unbound_condition_variable(self):
        report = analyze("r1 p(@X) :- q(@X), Z > 3.")
        (diag,) = report.by_code("NDL003")
        assert diag.rule == "r1" and "Z" in diag.message

    def test_ndl003_unusable_assignment(self):
        report = analyze("r1 p(@X) :- q(@X), Y = Z + 1.")
        assert report.by_code("NDL003")

    def test_assignment_chain_is_bound(self):
        report = analyze("r1 p(@X,Z) :- q(@X,Y), W = Y + 1, Z = W * 2.")
        assert report.ok and not report.diagnostics


class TestSchemaPass:
    def test_ndl101_inconsistent_arity(self):
        report = analyze("r1 p(@X) :- link(@X,Y).\nr2 p(@X) :- link(@X,Y,C).")
        (diag,) = report.by_code("NDL101")
        assert diag.predicate == "link" and diag.is_error

    def test_ndl102_materialize_key_out_of_range(self):
        report = analyze(
            "materialize(link, infinity, infinity, keys(1,4)).\n"
            "r1 p(@X) :- link(@X,Y)."
        )
        (diag,) = report.by_code("NDL102")
        assert diag.predicate == "link" and "4" in diag.message

    def test_ndl103_materialize_unused_predicate_is_warning(self):
        report = analyze(
            "materialize(ghost, infinity, infinity, keys(1)).\n"
            "r1 p(@X) :- q(@X)."
        )
        (diag,) = report.by_code("NDL103")
        assert not diag.is_error
        assert report.ok  # warnings do not fail a program

    def test_ndl104_conflicting_field_types(self):
        report = analyze(
            "r1 p(@X,C) :- q(@X), C = 1 + 1.\n"
            "r2 p(@X,C) :- q(@X), C = f_init(X,X)."
        )
        (diag,) = report.by_code("NDL104")
        assert diag.is_error
        assert "number" in diag.message and "path" in diag.message

    def test_type_inference_skipped_under_arity_conflict(self):
        # NDL101 programs would double-report every slot; the pass bails
        report = analyze(
            "r1 p(@X) :- q(@X,Y).\nr2 p(@X,C) :- q(@X), C = 1 + 1."
        )
        assert report.by_code("NDL101")
        assert not report.by_code("NDL104")


class TestStratificationPass:
    def test_ndl201_negation_inside_recursion_names_rule(self):
        report = analyze(
            "r1 p(@X) :- e(@X), !r(@X).\n"
            "r2 r(@X) :- p(@X)."
        )
        (diag,) = report.by_code("NDL201")
        assert diag.rule == "r1"
        assert diag.is_error
        # the witness cycle is rendered in the message
        assert "p -> r" in diag.message or "r -> p" in diag.message

    def test_ndl202_aggregate_through_cycle_is_warning(self):
        report = analyze(
            "r1 shortest(@X,Y,min<C>) :- cand(@X,Y,C).\n"
            "r2 cand(@X,Z,C) :- shortest(@X,Y,C1), hop(@Y,Z,C2), C = C1 + C2.\n"
            "r3 cand(@X,Y,C) :- hop(@X,Y,C)."
        )
        diags = report.by_code("NDL202")
        assert diags and all(not d.is_error for d in diags)
        assert diags[0].rule == "r1"
        assert report.ok

    def test_ndl203_self_negation_names_rule(self):
        report = analyze("r1 p(@X) :- q(@X), !p(@X).")
        (diag,) = report.by_code("NDL203")
        assert diag.rule == "r1" and diag.predicate == "p"
        # the degenerate case is not double-reported as NDL201
        assert not report.by_code("NDL201")

    def test_nonrecursive_negation_and_aggregation_are_clean(self):
        report = analyze(
            "r1 reach(@X,Y) :- link(@X,Y).\n"
            "r2 best(@X,min<C>) :- link(@X,Y,C).\n"
        )
        # arity clash between the two link uses aside, no NDL2xx fires
        assert not {c for c in report.codes() if c.startswith("NDL2")}


class TestLocationPass:
    def test_ndl301_three_locations(self):
        report = analyze("r1 p(@X) :- q(@X), s(@Y), t(@Z).")
        (diag,) = report.by_code("NDL301")
        assert diag.rule == "r1" and diag.is_error

    def test_ndl302_no_connecting_literal(self):
        report = analyze("r1 p(@X) :- q(@X), s(@Y).")
        (diag,) = report.by_code("NDL302")
        assert diag.rule == "r1" and diag.is_error

    def test_link_restricted_rule_is_clean(self):
        report = analyze("r1 p(@Y,X) :- link(@X,Y), q(@Y).")
        assert report.ok and not report.diagnostics

    def test_ndl303_head_shipped_to_uncarried_location(self):
        report = analyze("r1 p(@D) :- q(@S), D = S + 1.")
        (diag,) = report.by_code("NDL303")
        assert not diag.is_error and diag.rule == "r1"

    def test_ndl304_remote_negation(self):
        report = analyze("r1 p(@S) :- link(@S,D), !dead(@D,S).")
        (diag,) = report.by_code("NDL304")
        assert diag.is_error and diag.predicate == "dead"


class TestMonotonicityPass:
    SOURCE = (
        "r1 reach(@X,Y) :- link(@X,Y).\n"
        "r2 reach(@X,Z) :- reach(@X,Y), link(@Y,Z).\n"
        "r3 blocked(@X) :- node(@X), !reach(@X,X)."
    )

    def test_classification(self):
        program = parse_program(self.SOURCE, "t", strict=False)
        kinds = classify_monotonicity(program)
        assert kinds["reach"] == "monotonic"
        assert kinds["blocked"] == "non_monotonic"
        assert non_monotonic_predicates(program) == ["blocked"]

    def test_ndl401_only_without_retraction(self):
        program = parse_program(self.SOURCE, "t", strict=False)
        assert check_monotonicity(program, retract_derivations=True) == []
        diags = check_monotonicity(program, retract_derivations=False)
        assert [d.code for d in diags] == ["NDL401"]
        assert diags[0].predicate == "blocked"
        assert not diags[0].is_error

    def test_analyze_program_threads_retraction_flag(self):
        report = analyze(self.SOURCE, retract_derivations=False)
        assert report.by_code("NDL401")
        assert report.monotonicity["blocked"] == "non_monotonic"
        assert not analyze(self.SOURCE).by_code("NDL401")

    def test_engine_warns_on_unsound_config(self):
        from repro.dn.engine import DistributedEngine, EngineConfig
        from repro.workloads.topologies import line_topology

        program = parse_program(
            "r1 reach(@X,Y) :- link(@X,Y,C).\n"
            "r2 none(@X,Y) :- link(@X,Y,C), !reach(@X,Y)."
        )
        with pytest.warns(UnsoundConfigWarning, match="none"):
            DistributedEngine(
                program,
                line_topology(3),
                config=EngineConfig(retract_derivations=False),
            )

    def test_engine_silent_for_monotonic_program(self, recwarn):
        from repro.dn.engine import DistributedEngine, EngineConfig
        from repro.workloads.topologies import line_topology

        program = parse_program("r1 reach(@X,Y) :- link(@X,Y,C).")
        DistributedEngine(
            program,
            line_topology(3),
            config=EngineConfig(retract_derivations=False),
        )
        assert not [w for w in recwarn if w.category is UnsoundConfigWarning]


class TestBundledPrograms:
    def test_all_bundled_programs_are_error_free(self):
        from repro.ndlog.analysis.cli import _load_bundled

        for name, factory in _load_bundled().items():
            report = analyze_program(factory())
            assert report.ok, f"{name}: {report.format()}"

    def test_policy_program_carries_the_ndl202_warning(self):
        from repro.bgp.generator import policy_path_vector_program

        report = analyze_program(policy_path_vector_program())
        assert report.ok
        assert "NDL202" in report.codes()

    def test_severity_table_is_total(self):
        for code in CODES:
            assert severity_of(code) in ("error", "warning")
        assert WARNING_CODES <= set(CODES)


class TestCLI:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.ndl"
        path.write_text(PATH_VECTOR_SOURCE)
        assert lint_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_bad_file_exits_one_with_span(self, tmp_path, capsys):
        path = tmp_path / "bad.ndl"
        path.write_text("r1 p(@X,Y) :- q(@X).\n")
        assert lint_main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "NDL001" in out and ":1:" in out

    def test_fail_on_never_tolerates_errors(self, tmp_path):
        path = tmp_path / "bad.ndl"
        path.write_text("r1 p(@X,Y) :- q(@X).\n")
        assert lint_main([str(path), "--fail-on", "never"]) == 0

    def test_fail_on_warning_rejects_bundled_policy_program(self):
        assert lint_main(["--bundled"]) == 0
        assert lint_main(["--bundled", "--fail-on", "warning"]) == 1

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        path = tmp_path / "bad.ndl"
        path.write_text("r1 p(@X,Y) :- q(@X).\n")
        lint_main([str(path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload
        assert entry["ok"] is False
        assert entry["diagnostics"][0]["code"] == "NDL001"
        assert entry["diagnostics"][0]["line"] == 1

    def test_no_inputs_is_usage_error(self, capsys):
        assert lint_main([]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_missing_file_is_io_error(self, tmp_path):
        assert lint_main([str(tmp_path / "absent.ndl")]) == 2

    def test_no_retraction_flag_reports_ndl401(self, tmp_path, capsys):
        path = tmp_path / "np.ndl"
        path.write_text(TestMonotonicityPass.SOURCE)
        lint_main([str(path), "--no-retraction", "--fail-on", "never"])
        assert "NDL401" in capsys.readouterr().out


# -- property: analyzer-clean programs evaluate without raising ------------

RULE_TEMPLATES = (
    "tc1 hop(@X,Y) :- link(@X,Y,C).",
    "tc2 hop(@X,Z) :- hop(@X,Y), link(@Y,Z,C).",
    "sel val(@X,Y,min<C>) :- link(@X,Y,C).",
    "flt cheap(@X,Y) :- link(@X,Y,C), C < 5.",
    "art bump(@X,Y,D) :- link(@X,Y,C), D = C + 1.",
    "neg lonely(@X,Y) :- link(@X,Y,C), !hop(@Y,X).",
    "shp remote(@Y,X) :- link(@X,Y,C), q(@Y).",
    # deliberately broken: unsafe head, unbound negation, arity clash
    "bad1 orphan(@X,Z) :- link(@X,Y,C).",
    "bad2 quiet(@X) :- link(@X,Y,C), !link(@Y,Z).",
    "bad3 p(@X) :- q(@X), s(@Y).",
)


@st.composite
def random_programs(draw):
    rules = draw(
        st.lists(st.sampled_from(RULE_TEMPLATES), min_size=1, max_size=5, unique=True)
    )
    return parse_program("\n".join(rules), "gen", strict=False)


@st.composite
def random_link_facts(draw):
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, 3), st.integers(0, 3), st.integers(1, 9)
            ),
            max_size=6,
        )
    )
    facts = [("link", (a, b, c)) for a, b, c in edges if a != b]
    facts += [("q", (n,)) for n in range(4)]
    return facts


@settings(max_examples=60, deadline=None)
@given(program=random_programs(), facts=random_link_facts())
def test_programs_passing_analysis_evaluate_cleanly(program, facts):
    """If the analyzer reports no diagnostics at all, the centralized
    evaluator accepts the program on arbitrary small inputs (no
    EvaluationError, no NDlogError) — the lint gate is sound."""

    report = analyze_program(program)
    if report.diagnostics:
        return  # flagged: the property only claims clean programs run
    evaluate(program, facts)
