"""Unit tests for the NDlog AST helpers and tuple stores."""

import pytest

from repro.logic.terms import Const, Var
from repro.ndlog.ast import Aggregate, HeadLiteral, Literal, MaterializeDecl, NDlogError, Program
from repro.ndlog.parser import parse_program, parse_rule
from repro.ndlog.store import Database, Table


class TestAst:
    def test_literal_location_term(self):
        lit = Literal("link", (Var("S"), Var("D")), location=0)
        assert lit.location_term == Var("S")
        assert Literal("x", (Const(1),)).location_term is None

    def test_literal_location_out_of_range(self):
        with pytest.raises(NDlogError):
            Literal("link", (Var("S"),), location=3)

    def test_head_aggregate_introspection(self):
        head = HeadLiteral("best", (Var("S"), Aggregate("min", Var("C"))), location=0)
        assert head.has_aggregate
        assert head.group_by_indices == [0]
        assert head.plain_args()[1] == Var("C")

    def test_rule_is_local(self):
        local = parse_rule("r p(@S,D) :- q(@S,D), s(@S).")
        remote = parse_rule("r p(@S,D) :- q(@S,Z), t(@Z,D).")
        assert local.is_local
        assert not remote.is_local

    def test_program_predicate_classification(self):
        program = parse_program("p(@X,Y) :- e(@X,Y).\nq(@X,Y) :- p(@X,Y).")
        assert program.base_predicates() == {"e"}
        assert program.derived_predicates() == {"p", "q"}

    def test_program_arity_consistency_check(self):
        program = Program("bad")
        program.add_rule(parse_rule("r1 p(@X,Y) :- e(@X,Y)."))
        program.rules.append(parse_rule("r2 p(@X) :- e(@X,Y)."))
        with pytest.raises(NDlogError):
            program.check()

    def test_lifetime_lookup(self):
        program = parse_program("materialize(hb, 5, infinity, keys(1)).\np(@X) :- hb(@X).")
        assert program.lifetime_of("hb") == 5
        assert program.lifetime_of("p") == float("inf")


class TestTable:
    def test_insert_and_contains(self):
        table = Table("link")
        assert table.insert(("a", "b", 1))
        assert not table.insert(("a", "b", 1))  # duplicate
        assert ("a", "b", 1) in table
        assert len(table) == 1

    def test_key_replacement(self):
        table = Table("route", keys=(0, 1))
        table.insert(("a", "b", 5))
        changed = table.insert(("a", "b", 3))
        assert changed
        assert table.rows() == [("a", "b", 3)]
        assert len(table) == 1

    def test_soft_state_expiry(self):
        table = Table("hb", lifetime=2.0)
        table.insert(("a",), now=0.0)
        assert table.expire(now=1.0) == []
        assert table.expire(now=2.5) == [("a",)]
        assert len(table) == 0

    def test_refresh_extends_lifetime_without_change(self):
        table = Table("hb", lifetime=2.0)
        table.insert(("a",), now=0.0)
        assert not table.insert(("a",), now=1.5)  # refresh, not a change
        assert table.expire(now=3.0) == []  # extended to 3.5
        assert table.expire(now=4.0) == [("a",)]

    def test_max_size_eviction(self):
        table = Table("cache", max_size=2)
        table.insert((1,))
        table.insert((2,))
        table.insert((3,))
        assert len(table) == 2
        assert (1,) not in table

    def test_delete(self):
        table = Table("t", keys=(0,))
        table.insert(("a", 1))
        assert table.delete(("a", 1))
        assert not table.delete(("a", 1))


class TestDatabase:
    def test_declare_from_materialize(self):
        db = Database()
        decl = MaterializeDecl("route", 10.0, float("inf"), (1, 2))
        table = db.declare_from(decl)
        assert table.keys == (0, 1)
        assert table.is_soft_state

    def test_snapshot_and_copy_are_independent(self):
        db = Database()
        db.insert("p", (1,))
        copy = db.copy()
        copy.insert("p", (2,))
        assert db.rows("p") == [(1,)]
        assert set(copy.rows("p")) == {(1,), (2,)}
        assert db.snapshot() == {"p": {(1,)}}

    def test_expire_across_tables(self):
        db = Database()
        db.declare("hb", lifetime=1.0)
        db.insert("hb", ("x",), now=0.0)
        db.insert("hard", ("y",), now=0.0)
        removed = db.expire(now=5.0)
        assert removed == {"hb": [("x",)]}
        assert db.rows("hard") == [("y",)]

    def test_fact_count(self):
        db = Database()
        db.insert("p", (1,))
        db.insert("q", (1, 2))
        assert db.fact_count() == 2
