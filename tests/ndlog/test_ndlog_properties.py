"""Property-based tests for NDlog evaluation invariants."""

from hypothesis import given, settings, strategies as st

from repro.ndlog.parser import parse_program
from repro.ndlog.seminaive import evaluate
from repro.protocols.pathvector import PATH_VECTOR_SOURCE


node_ids = st.integers(min_value=0, max_value=5)


@st.composite
def undirected_weighted_graphs(draw):
    """A small random set of symmetric weighted links."""

    edge_count = draw(st.integers(min_value=1, max_value=8))
    links = {}
    for _ in range(edge_count):
        a = draw(node_ids)
        b = draw(node_ids)
        if a == b:
            continue
        cost = draw(st.integers(min_value=1, max_value=9))
        links[(a, b)] = cost
        links[(b, a)] = cost
    return [("link", (a, b, c)) for (a, b), c in links.items()]


def shortest_costs(link_facts):
    """Dijkstra-free reference shortest paths (Floyd–Warshall)."""

    nodes = sorted({v for _, (a, b, _) in link_facts for v in (a, b)})
    INF = float("inf")
    dist = {(a, b): (0 if a == b else INF) for a in nodes for b in nodes}
    for _, (a, b, c) in link_facts:
        dist[(a, b)] = min(dist[(a, b)], c)
    for k in nodes:
        for i in nodes:
            for j in nodes:
                if dist[(i, k)] + dist[(k, j)] < dist[(i, j)]:
                    dist[(i, j)] = dist[(i, k)] + dist[(k, j)]
    return {(a, b): d for (a, b), d in dist.items() if a != b and d < INF}


@settings(max_examples=30, deadline=None)
@given(undirected_weighted_graphs())
def test_path_vector_computes_shortest_costs(link_facts):
    """bestPathCost agrees with Floyd–Warshall on every random graph.

    Note: the NDlog path-vector protocol only considers *simple* paths, but on
    non-negative weights the shortest walk is always realized by a simple
    path, so the comparison is exact.
    """

    program = parse_program(PATH_VECTOR_SOURCE, "pv")
    db = evaluate(program, link_facts)
    expected = shortest_costs(link_facts)
    computed = {(s, d): c for s, d, c in db.rows("bestPathCost")}
    assert computed == expected


@settings(max_examples=30, deadline=None)
@given(undirected_weighted_graphs())
def test_path_vector_invariants(link_facts):
    """Structural invariants: paths are simple, start/end correctly, and the
    selected best path is one of the derived paths with matching cost."""

    program = parse_program(PATH_VECTOR_SOURCE, "pv")
    db = evaluate(program, link_facts)
    paths = set(db.rows("path"))
    for s, d, p, c in paths:
        assert p[0] == s and p[-1] == d
        assert len(p) == len(set(p))
    for s, d, p, c in db.rows("bestPath"):
        assert (s, d, p, c) in paths


@settings(max_examples=20, deadline=None)
@given(undirected_weighted_graphs())
def test_evaluation_is_deterministic(link_facts):
    program = parse_program(PATH_VECTOR_SOURCE, "pv")
    db1 = evaluate(program, link_facts)
    db2 = evaluate(program, link_facts)
    assert db1.snapshot() == db2.snapshot()
