"""Property tests for the rule-compilation layer (:mod:`repro.ndlog.plan`).

The compiled join plans must be invisible: for any program and database, the
compiled evaluator has to produce exactly the fixpoint of the AST
interpreter — with and without hash indexes, through the centralized
evaluator and through the distributed engine (including soft-state expiry
and refresh).  Randomized programs/databases come from hypothesis
strategies mixing recursion, constants, conditions, negation, aggregation,
and function applications.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dn.engine import DistributedEngine, EngineConfig
from repro.dn.network import Topology
from repro.logic.bmc import EvaluationError
from repro.ndlog.parser import parse_program
from repro.ndlog.plan import comparison_fn, compile_rule
from repro.ndlog.seminaive import evaluate
from repro.ndlog.functions import builtin_registry
from repro.protocols.distancevector import distance_vector_program
from repro.protocols.pathvector import path_vector_program


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

nodes = st.integers(min_value=0, max_value=5)

edges = st.lists(
    st.tuples(nodes, nodes, st.integers(min_value=1, max_value=4)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=1,
    max_size=12,
    unique_by=lambda e: (e[0], e[1]),
)

#: Optional rule templates over a base edge relation e/3, mixing recursion,
#: arithmetic, constants, conditions, negation, aggregation, and repeated
#: variables (the duplicate-occurrence check path of the compiled literal).
RULE_TEMPLATES = [
    "p(@X,Y,C) :- e(@X,Y,C).",
    "p(@X,Z,C) :- e(@X,Y,C1), p(@Y,Z,C2), C=C1+C2, C<=8.",
    "q(@X,Y) :- p(@X,Y,C), C<={bound}.",
    "r(@X,Y) :- p(@X,Y,C), e(@Y,X,C2).",
    "s(@X,Y) :- p(@X,Y,C), X!=Y.",
    "t(@X,Y) :- q(@X,Y), !e(@X,Y,{cost}).",
    "m(@X,min<C>) :- p(@X,Y,C).",
    "k(@X,count<Y>) :- q(@X,Y).",
    "c(@X,Y) :- e(@X,Y,{cost}).",
    "w(@X,S) :- p(@X,X,C), S=C*2.",
    "v(@X,max<C>) :- p(@X,Y,C), !t(@X,Y).",
    "u(@X,sum<C>) :- e(@X,Y,C), Y>={bound2}.",
]

programs = st.builds(
    lambda picks, bound, bound2, cost: "\n".join(
        [RULE_TEMPLATES[0]]
        + [
            RULE_TEMPLATES[i].format(bound=bound, bound2=bound2, cost=cost)
            for i in sorted(picks)
        ]
    ),
    st.sets(st.integers(min_value=1, max_value=len(RULE_TEMPLATES) - 1), max_size=7),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=4),
)


def compiled_matches_interpreted(source: str, facts, *, use_indexes: bool) -> None:
    compiled = evaluate(
        parse_program(source, "compiled"),
        facts,
        compile_rules=True,
        use_indexes=use_indexes,
    )
    interpreted = evaluate(
        parse_program(source, "interpreted"),
        facts,
        compile_rules=False,
        use_indexes=use_indexes,
    )
    assert compiled.snapshot() == interpreted.snapshot()


# ---------------------------------------------------------------------------
# Centralized: compiled fixpoint == interpreted fixpoint
# ---------------------------------------------------------------------------


class TestCompiledFixpointEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(source=programs, edge_list=edges)
    def test_randomized_programs_indexed(self, source, edge_list):
        facts = [("e", edge) for edge in edge_list]
        compiled_matches_interpreted(source, facts, use_indexes=True)

    @settings(max_examples=20, deadline=None)
    @given(source=programs, edge_list=edges)
    def test_randomized_programs_scan_join(self, source, edge_list):
        facts = [("e", edge) for edge in edge_list]
        compiled_matches_interpreted(source, facts, use_indexes=False)

    @settings(max_examples=10, deadline=None)
    @given(edge_list=edges)
    def test_path_vector_fixpoint(self, edge_list):
        facts = [("link", edge) for edge in edge_list]
        compiled = evaluate(path_vector_program(), facts, compile_rules=True)
        interpreted = evaluate(path_vector_program(), facts, compile_rules=False)
        assert compiled.snapshot() == interpreted.snapshot()

    @settings(max_examples=10, deadline=None)
    @given(edge_list=edges)
    def test_distance_vector_fixpoint(self, edge_list):
        facts = [("link", edge) for edge in edge_list]
        compiled = evaluate(distance_vector_program(), facts, compile_rules=True)
        interpreted = evaluate(distance_vector_program(), facts, compile_rules=False)
        assert compiled.snapshot() == interpreted.snapshot()


# ---------------------------------------------------------------------------
# Distributed: compiled engine == interpreted engine (incl. expiry/refresh)
# ---------------------------------------------------------------------------

SOFT_STATE_SOURCE = """
materialize(link, 3, infinity, keys(1,2)).
materialize(reach, 3, infinity, keys(1,2)).
materialize(deg, infinity, infinity, keys(1)).
r1 reach(@X,Y) :- link(@X,Y,C).
r2 reach(@Y,Z) :- link(@X,Y,C), reach(@X,Z), Z != Y.
r3 deg(@X,count<Y>) :- reach(@X,Y).
"""


def run_engine(source: str, edge_list, *, compile_rules: bool, refresh=None):
    program = parse_program(source, "soft")
    topology = Topology.from_edges(edge_list)
    config = EngineConfig(
        compile_rules=compile_rules,
        refresh_interval=refresh,
        max_events=200_000,
    )
    engine = DistributedEngine(program, topology, config=config)
    engine.run(until=10.0)
    return engine


class TestCompiledEngineEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(edge_list=edges)
    def test_soft_state_expiry_runs_match(self, edge_list):
        compiled = run_engine(SOFT_STATE_SOURCE, edge_list, compile_rules=True)
        interpreted = run_engine(SOFT_STATE_SOURCE, edge_list, compile_rules=False)
        assert compiled.global_snapshot() == interpreted.global_snapshot()
        assert compiled.total_messages() == interpreted.total_messages()

    @settings(max_examples=8, deadline=None)
    @given(edge_list=edges)
    def test_soft_state_refresh_runs_match(self, edge_list):
        compiled = run_engine(
            SOFT_STATE_SOURCE, edge_list, compile_rules=True, refresh=2.0
        )
        interpreted = run_engine(
            SOFT_STATE_SOURCE, edge_list, compile_rules=False, refresh=2.0
        )
        assert compiled.global_snapshot() == interpreted.global_snapshot()


# ---------------------------------------------------------------------------
# Compiled comparison / error semantics
# ---------------------------------------------------------------------------


class TestCompiledSemantics:
    def test_uncomparable_condition_raises_evaluation_error(self):
        program = parse_program("small(@X,Y) :- t(@X,Y), Y < 3.")
        with pytest.raises(EvaluationError, match="cannot compare"):
            evaluate(program, [("t", (1, "not-a-number"))], compile_rules=True)

    def test_comparison_fn_names_both_types(self):
        with pytest.raises(EvaluationError, match="str and int"):
            comparison_fn("<=")("s", 3)

    def test_equality_on_mixed_types_still_works(self):
        program = parse_program("same(@X,Y) :- t(@X,Y), Y = 3.")
        db = evaluate(program, [("t", (1, "s")), ("t", (2, 3))], compile_rules=True)
        assert db.rows("same") == [(2, 3)]

    def test_unknown_function_is_no_match_in_condition(self):
        # like ground_eval, an unregistered function fails the branch quietly
        program = parse_program("p(@X) :- t(@X,Y), f_unknown(Y) = 1.")
        db = evaluate(program, [("t", (1, 2))], compile_rules=True)
        assert db.rows("p") == []

    def test_unevaluable_literal_compiles_to_dead_plan(self):
        # the head variable is only reachable through a function term the
        # matcher can never evaluate; the interpreter derives nothing, and
        # the compiled path must load and agree rather than reject the rule
        source = "h(@Y) :- p(f_last(Y))."
        facts = [("p", (3,))]
        compiled = evaluate(parse_program(source), facts, compile_rules=True)
        interpreted = evaluate(parse_program(source), facts, compile_rules=False)
        assert compiled.snapshot() == interpreted.snapshot()
        assert compiled.rows("h") == []

    def test_duplicate_variable_in_literal(self):
        program = parse_program("loop(@X) :- e(@X,X,C).")
        facts = [("e", (1, 1, 9)), ("e", (1, 2, 9))]
        db = evaluate(program, facts, compile_rules=True)
        assert db.rows("loop") == [(1,)]

    def test_compiled_plan_delta_matches_full_join(self):
        # fire with an explicit delta view and without; the delta-restricted
        # union across passes must equal the full join
        source = "p(@X,Z) :- e(@X,Y), e(@Y,Z)."
        program = parse_program(source)
        rule = program.rules[0]
        registry = builtin_registry()
        compiled = compile_rule(rule, registry)
        from repro.ndlog.seminaive import DeltaIndex
        from repro.ndlog.store import Database

        db = Database()
        for fact in [(1, 2), (2, 3), (3, 1)]:
            db.insert("e", fact)
        full = {f.values for f in compiled.fire(db)}
        view = DeltaIndex({"e": [(1, 2), (2, 3), (3, 1)]})
        restricted = {f.values for f in compiled.fire(db, view)}
        assert full == restricted == {(1, 3), (2, 1), (3, 2)}
