"""Property tests for the indexed evaluation layer.

The hash-index layer must be invisible: for any program and database, the
indexed evaluator has to produce exactly the fixpoint of the naive
scan-join evaluator, and a table probe has to agree with a full-scan filter
after any mutation sequence.  Randomized programs/databases come from
hypothesis strategies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ndlog.parser import parse_program
from repro.ndlog.seminaive import evaluate
from repro.ndlog.store import Table
from repro.protocols.distancevector import distance_vector_program
from repro.protocols.pathvector import path_vector_program


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

nodes = st.integers(min_value=0, max_value=5)

edges = st.lists(
    st.tuples(nodes, nodes, st.integers(min_value=1, max_value=4)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=1,
    max_size=12,
    unique_by=lambda e: (e[0], e[1]),
)

#: Optional rule templates mixing recursion, constants, conditions,
#: negation, and aggregation over a base edge relation e/3.
RULE_TEMPLATES = [
    "p(@X,Y,C) :- e(@X,Y,C).",
    "p(@X,Z,C) :- e(@X,Y,C1), p(@Y,Z,C2), C=C1+C2, C<=8.",
    "q(@X,Y) :- p(@X,Y,C), C<={bound}.",
    "r(@X,Y) :- p(@X,Y,C), e(@Y,X,C2).",
    "s(@X,Y) :- p(@X,Y,C), X!=Y.",
    "t(@X,Y) :- q(@X,Y), !e(@X,Y,{cost}).",
    "m(@X,min<C>) :- p(@X,Y,C).",
    "k(@X,count<Y>) :- q(@X,Y).",
    "c(@X,Y) :- e(@X,Y,{cost}).",
]

programs = st.builds(
    lambda picks, bound, cost: "\n".join(
        [RULE_TEMPLATES[0]]
        + [RULE_TEMPLATES[i].format(bound=bound, cost=cost) for i in sorted(picks)]
    ),
    st.sets(st.integers(min_value=1, max_value=len(RULE_TEMPLATES) - 1), max_size=6),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=4),
)


def fixpoints_match(source: str, facts) -> None:
    program_a = parse_program(source, "indexed")
    program_b = parse_program(source, "naive")
    indexed = evaluate(program_a, facts, use_indexes=True)
    naive = evaluate(program_b, facts, use_indexes=False)
    assert indexed.snapshot() == naive.snapshot()


# ---------------------------------------------------------------------------
# Indexed fixpoint == naive fixpoint
# ---------------------------------------------------------------------------


class TestIndexedFixpointEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(source=programs, edge_list=edges)
    def test_randomized_programs_and_databases(self, source, edge_list):
        facts = [("e", edge) for edge in edge_list]
        fixpoints_match(source, facts)

    @settings(max_examples=15, deadline=None)
    @given(edge_list=edges)
    def test_path_vector_fixpoint(self, edge_list):
        facts = [("link", edge) for edge in edge_list]
        program = path_vector_program()
        indexed = evaluate(program, facts, use_indexes=True)
        naive = evaluate(path_vector_program(), facts, use_indexes=False)
        assert indexed.snapshot() == naive.snapshot()

    @settings(max_examples=10, deadline=None)
    @given(edge_list=edges)
    def test_distance_vector_fixpoint(self, edge_list):
        facts = [("link", edge) for edge in edge_list]
        indexed = evaluate(distance_vector_program(), facts, use_indexes=True)
        naive = evaluate(distance_vector_program(), facts, use_indexes=False)
        assert indexed.snapshot() == naive.snapshot()


# ---------------------------------------------------------------------------
# Table probe == scan filter under mutation
# ---------------------------------------------------------------------------

row_values = st.tuples(nodes, nodes, st.integers(min_value=1, max_value=3))

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), row_values),
        st.tuples(st.just("delete"), row_values),
    ),
    max_size=40,
)


class TestProbeMatchesScan:
    @settings(max_examples=50, deadline=None)
    @given(ops=operations, positions=st.sets(st.integers(0, 2), min_size=1, max_size=3))
    def test_probe_after_mutations(self, ops, positions):
        table = Table("p", keys=(0, 1))
        positions = tuple(sorted(positions))
        # probe early so the index must be *maintained*, not rebuilt
        table.probe(positions, (0,) * len(positions))
        for op, row in ops:
            if op == "insert":
                table.insert(row)
            else:
                table.delete(row)
        for row in table.rows():
            probe_values = tuple(row[p] for p in positions)
            expected = [
                r for r in table.rows() if tuple(r[p] for p in positions) == probe_values
            ]
            assert sorted(table.probe(positions, probe_values)) == sorted(expected)
        assert table.probe(positions, (99,) * len(positions)) == []

    @settings(max_examples=30, deadline=None)
    @given(ops=operations)
    def test_probe_after_expiry(self, ops):
        table = Table("soft", keys=(0, 1), lifetime=5.0)
        now = 0.0
        for op, row in ops:
            now += 0.5
            if op == "insert":
                table.insert(row, now)
            else:
                table.delete(row)
            table.expire(now - 4.0)
        table.expire(now)
        for row in table.rows():
            assert row in table.probe((0,), (row[0],))
        live = set(table.rows())
        for bucket_rows in [table.probe((0,), (v,)) for v in range(6)]:
            for row in bucket_rows:
                assert tuple(row) in live

    def test_index_survives_keyed_replacement(self):
        table = Table("route", keys=(0, 1))
        table.insert((1, 2, "old"))
        assert table.probe((2,), ("old",)) == [(1, 2, "old")]
        table.insert((1, 2, "new"))
        assert table.probe((2,), ("old",)) == []
        assert table.probe((2,), ("new",)) == [(1, 2, "new")]

    def test_index_respects_fifo_eviction(self):
        table = Table("small", max_size=2)
        table.insert((1,))
        assert table.probe((0,), (1,)) == [(1,)]
        table.insert((2,))
        table.insert((3,))  # evicts (1,)
        assert table.probe((0,), (1,)) == []
        assert table.probe((0,), (3,)) == [(3,)]

    def test_unhashable_probe_value_raises_typeerror(self):
        table = Table("p")
        table.insert((1, 2))
        with pytest.raises(TypeError):
            table.probe((0,), ([1, 2],))


class TestUnhashableRows:
    def test_insert_with_existing_index_tolerates_unhashable_values(self):
        # regression: building an index and then inserting a row whose value
        # at the indexed position is unhashable used to raise TypeError
        table = Table("p", keys=(0,))
        table.insert((1, "a"))
        assert table.probe((1,), ("a",)) == [(1, "a")]
        table.insert((2, ["unhashable"]))
        assert (2, ["unhashable"]) in table
        # hashable probes still work; the unhashable row can never match one
        assert table.probe((1,), ("a",)) == [(1, "a")]
        # probing with the unhashable value raises, and the scan path finds it
        with pytest.raises(TypeError):
            table.probe((1,), (["unhashable"],))
        assert (2, ["unhashable"]) in table.rows()

    def test_delete_unhashable_row_with_existing_index(self):
        table = Table("p", keys=(0,))
        table.probe((1,), ("x",))  # force index creation
        table.insert((1, ["v"]))
        assert table.delete((1, ["v"]))
        assert table.rows() == []

    def test_insert_delete_probe_round_trip_with_unhashable_rows(self):
        # insert → delete → probe cycles must keep the index and the
        # scan-fallback bookkeeping consistent: unhashable rows never enter
        # the index, hashable rows must stay probe-able throughout
        table = Table("p", keys=(0,))
        table.probe((1,), ("seed",))  # index exists before any mutation
        table.insert((1, "a"))
        table.insert((2, ["u1"]))
        table.insert((3, "a"))
        table.insert((4, ["u2"]))
        assert sorted(table.probe((1,), ("a",))) == [(1, "a"), (3, "a")]
        assert table.delete((2, ["u1"]))
        assert sorted(table.probe((1,), ("a",))) == [(1, "a"), (3, "a")]
        assert (2, ["u1"]) not in table.rows()
        # scan fallback (unhashable probe) sees exactly the surviving rows
        with pytest.raises(TypeError):
            table.probe((1,), (["u2"],))
        assert (4, ["u2"]) in table.rows()
        assert table.delete((4, ["u2"]))
        assert (4, ["u2"]) not in table.rows()
        # re-insert after delete round-trips cleanly
        table.insert((2, ["u1"]))
        assert (2, ["u1"]) in table
        assert table.delete((2, ["u1"]))
        assert sorted(table.rows()) == [(1, "a"), (3, "a")]

    def test_keyed_replacement_between_hashable_and_unhashable(self):
        table = Table("p", keys=(0,))
        table.probe((1,), ("x",))
        table.insert((1, "x"))
        table.insert((1, ["now-unhashable"]))  # replaces the indexed row
        assert table.probe((1,), ("x",)) == []
        assert (1, ["now-unhashable"]) in table
        table.insert((1, "y"))  # back to an indexable row
        assert table.probe((1,), ("y",)) == [(1, "y")]
        assert table.delete((1, "y"))
        assert table.rows() == []
        assert table.probe((1,), ("y",)) == []

    def test_release_and_counts_with_unhashable_values(self):
        table = Table("p", keys=(0,))
        table.insert((1, ["v"]))
        table.insert((1, ["v"]))  # second support for the same row
        assert table.count_of((1, ["v"])) == 2
        assert not table.release((1, ["v"]))
        assert table.release((1, ["v"]))
        assert table.delete((1, ["v"]))
        assert table.rows() == []

    def test_expiry_of_unhashable_rows_with_index(self):
        table = Table("soft", keys=(0,), lifetime=1.0)
        table.probe((1,), ("x",))
        table.insert((1, ["v"]), now=0.0)
        table.insert((2, "x"), now=0.5)
        assert table.expire(1.2) == [(1, ["v"])]
        assert table.probe((1,), ("x",)) == [(2, "x")]
