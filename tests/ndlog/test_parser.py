"""Unit tests for the NDlog parser."""

import pytest

from repro.logic.terms import Const, Func, Var
from repro.ndlog.ast import Assignment, Condition, Literal
from repro.ndlog.parser import ParseError, parse_program, parse_rule, tokenize
from repro.protocols.pathvector import PATH_VECTOR_SOURCE


class TestTokenizer:
    def test_tokenizes_rule_syntax(self):
        tokens = tokenize("r1 path(@S,D) :- link(@S,D).")
        values = [t.value for t in tokens]
        assert ":-" in values and "@" in values and "." in values

    def test_comments_are_skipped(self):
        tokens = tokenize("/* block */ p(X). // line\n# hash\nq(Y).")
        assert all("block" not in t.value for t in tokens)

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("p(X) :- q(X) & r(X).")


class TestRuleParsing:
    def test_paper_program_parses(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pathvector")
        assert len(program.rules) == 4
        assert {r.name for r in program.rules} == {"r1", "r2", "r3", "r4"}
        assert set(program.materialized) == {"link", "path", "bestPathCost", "bestPath"}

    def test_location_specifier_positions(self):
        rule = parse_rule("r path(@S,D,C) :- link(@S,D,C).")
        assert rule.head.location == 0
        assert rule.body_literals[0].location == 0

    def test_aggregate_head(self):
        rule = parse_rule("r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).")
        assert rule.head.has_aggregate
        index, agg = rule.head.aggregates[0]
        assert index == 2 and agg.function == "min" and agg.variable == Var("C")

    def test_assignment_vs_condition(self):
        rule = parse_rule("r p(@S,D,C) :- q(@S,D,C1), C=C1+1, f_inPath(P,S)=false, q(@S,D,P).")
        assert any(isinstance(b, Assignment) for b in rule.body)
        conditions = [b for b in rule.body if isinstance(b, Condition)]
        assert len(conditions) == 1
        assert conditions[0].op == "="

    def test_negated_literal(self):
        rule = parse_rule("r p(@S,D) :- q(@S,D), !deny(@S,D).")
        negs = [b for b in rule.body if isinstance(b, Literal) and b.negated]
        assert len(negs) == 1 and negs[0].predicate == "deny"

    def test_arithmetic_precedence(self):
        rule = parse_rule("r p(@S,C) :- q(@S,A,B), C=A+B*2.")
        assign = rule.assignments[0]
        assert assign.expression == Func("+", (Var("A"), Func("*", (Var("B"), Const(2)))))

    def test_rule_names_are_optional(self):
        program = parse_program("p(@X) :- q(@X).\nr2 s(@X) :- p(@X).")
        assert program.rules[0].name == "r1"
        assert program.rules[1].name == "r2"

    def test_unsafe_rule_rejected(self):
        with pytest.raises(Exception):
            parse_program("r p(@S,D) :- q(@S).")


class TestFactsAndMaterialize:
    def test_fact_parsing(self):
        program = parse_program('link(@"a","b",3).')
        assert len(program.facts) == 1
        fact = program.facts[0]
        assert fact.predicate == "link" and fact.values == ("a", "b", 3)
        assert fact.location == 0

    def test_lowercase_identifiers_are_constants(self):
        program = parse_program("link(@a,b,1).")
        assert program.facts[0].values == ("a", "b", 1)

    def test_non_ground_fact_rejected(self):
        with pytest.raises(ParseError):
            parse_program("link(@S,b,1).")

    def test_materialize_parsing(self):
        program = parse_program("materialize(link, 30, 100, keys(1,2)).\np(@X) :- link(@X,Y,C).")
        decl = program.materialized["link"]
        assert decl.lifetime == 30 and decl.max_size == 100 and decl.keys == (1, 2)
        assert decl.is_soft_state

    def test_materialize_infinity(self):
        program = parse_program("materialize(link, infinity, infinity, keys(1)).\np(@X) :- link(@X).")
        assert not program.materialized["link"].is_soft_state

    def test_roundtrip_through_str(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        reparsed = parse_program(str(program), "pv2")
        assert len(reparsed.rules) == len(program.rules)
        assert reparsed.predicates() == program.predicates()

    def test_parse_rule_requires_single_rule(self):
        with pytest.raises(ParseError):
            parse_rule("p(@X) :- q(@X). r(@X) :- q(@X).")
