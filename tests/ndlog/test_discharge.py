"""Static obligation discharge: proofs, replay provenance, classification.

The acceptance contract: on the plain path-vector program the
``route_validity`` and ``best_agreement`` monitors are statically proven
with replayable scripts, ``cycle_freedom`` stays runtime-monitored, and
policies whose algebras do not discharge keep everything at runtime.
"""

import json

import pytest

from repro.bgp.generator import policy_path_vector_program
from repro.fvn.monitors import (
    RUNTIME_MONITORED,
    STATICALLY_PROVEN,
    classify_monitors,
    clean_report,
)
from repro.ndlog.analysis.discharge import (
    algebra_for_policy,
    discharge_program,
    property_suite_for,
    replay_proof,
)
from repro.protocols import path_vector_program


@pytest.fixture(scope="module")
def pv_report():
    return discharge_program(path_vector_program())


class TestDischarge:
    def test_pathvector_monitors_proven(self, pv_report):
        assert pv_report.proven_monitors == ("best_agreement", "route_validity")
        assert pv_report.algebra_well_behaved
        assert pv_report.algebra_obligations_discharged
        assert all(ob["discharged"] for ob in pv_report.algebra_obligations)

    def test_cycle_freedom_not_proved(self, pv_report):
        proof = pv_report.proof_for("pathCycleFree")
        assert proof is not None and not proof.proved
        assert proof.script == ()

    def test_proved_properties_carry_scripts(self, pv_report):
        for proof in pv_report.proofs:
            if proof.proved:
                assert proof.script
                assert proof.script[-1][0] == "grind"
                assert proof.interactive_steps == len(proof.script) - 1

    def test_report_is_json_serializable(self, pv_report):
        payload = json.loads(json.dumps(pv_report.to_dict()))
        assert payload["proven_monitors"] == ["best_agreement", "route_validity"]

    def test_cache_returns_same_report(self, pv_report):
        assert discharge_program(path_vector_program()) is pv_report

    def test_policy_program_has_empty_suite(self):
        assert property_suite_for(policy_path_vector_program()) == []
        report = discharge_program(policy_path_vector_program(), policy="gao_rexford")
        assert report.proven_monitors == ()

    def test_undischarged_algebra_keeps_monitors_at_runtime(self):
        report = discharge_program(path_vector_program(), policy="random_pref")
        # the proofs still close, but the bgp algebra is not well-behaved
        assert any(p.proved for p in report.proofs)
        assert not report.algebra_obligations_discharged
        assert report.proven_monitors == ()

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="nope"):
            algebra_for_policy("nope")


class TestReplay:
    def test_recorded_scripts_replay(self, pv_report):
        program = path_vector_program()
        for proof in pv_report.proofs:
            if proof.proved:
                assert replay_proof(program, proof.property, proof.script), (
                    proof.property
                )

    def test_truncated_script_does_not_close(self, pv_report):
        program = path_vector_program()
        proof = next(p for p in pv_report.proofs if p.proved)
        assert not replay_proof(program, proof.property, proof.script[:-1])

    def test_unknown_property_replays_false(self):
        assert not replay_proof(path_vector_program(), "nope", (("grind", {}),))

    def test_scripts_survive_json_round_trip(self, pv_report):
        program = path_vector_program()
        proof = next(p for p in pv_report.proofs if p.proved)
        script = json.loads(json.dumps(list(proof.script)))
        assert replay_proof(program, proof.property, script)


class TestClassification:
    def test_classify_monitors(self):
        kinds = classify_monitors(
            path_vector_program(),
            ("route_validity", "best_agreement", "cycle_freedom"),
        )
        assert kinds == {
            "route_validity": STATICALLY_PROVEN,
            "best_agreement": STATICALLY_PROVEN,
            "cycle_freedom": RUNTIME_MONITORED,
        }

    def test_clean_report_shape(self):
        report = clean_report("route_validity")
        assert report == {
            "monitor": "route_validity",
            "first_violation_time": None,
            "violations": 0,
            "active_at_end": 0,
            "examples": [],
        }

    def test_clean_report_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown monitor kind"):
            clean_report("nope")
