"""Golden-file corpus: pinned parse results and emitted codegen source.

``tests/ndlog/corpus/*.ndl`` holds the bundled paper programs (path vector,
distance vector, link state, heartbeat, the generated policy path vector)
plus edge-case texts (negation, aggregates, duplicate variables, soft
state, a rule the generator cannot lower).  For each text the suite pins

* ``<name>.parse.txt`` — a deterministic dump of the parsed AST, and
* ``<name>.codegen.txt`` — the specialized Python source the code
  generator emits (:func:`repro.ndlog.codegen.emit_program_source`),
  fallback rules included as annotated comments,

so any change to parser output or generated code shows up as a reviewable
diff.  Regenerate with ``pytest --update-goldens tests/ndlog`` and review
the diff before committing.
"""

import pathlib

import pytest

from repro.ndlog.codegen import emit_program_source
from repro.ndlog.functions import builtin_registry
from repro.ndlog.parser import parse_program
from repro.ndlog.seminaive import evaluate

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.ndl"))


def parse_dump(program) -> str:
    """A deterministic, line-per-construct dump of the parsed program."""

    lines = [f"program {program.name}"]
    for decl in program.materialized.values():
        lines.append(repr(decl))
    for rule in program.rules:
        lines.append(repr(rule))
    return "\n".join(lines) + "\n"


def check_golden(path: pathlib.Path, actual: str, update: bool) -> None:
    if update:
        path.write_text(actual)
        return
    assert path.exists(), (
        f"missing golden file {path.name}; generate it with "
        f"`pytest --update-goldens {path.parent.parent}`"
    )
    assert actual == path.read_text(), (
        f"{path.name} is stale; regenerate with --update-goldens and review the diff"
    )


def test_corpus_is_nonempty():
    assert len(CORPUS) >= 7


@pytest.mark.parametrize("ndl", CORPUS, ids=lambda p: p.stem)
def test_parse_golden(ndl, update_goldens):
    program = parse_program(ndl.read_text(), ndl.stem)
    check_golden(
        ndl.with_suffix(".parse.txt"), parse_dump(program), update_goldens
    )


@pytest.mark.parametrize("ndl", CORPUS, ids=lambda p: p.stem)
def test_codegen_source_golden(ndl, update_goldens):
    program = parse_program(ndl.read_text(), ndl.stem)
    source = emit_program_source(program, builtin_registry())
    check_golden(ndl.with_suffix(".codegen.txt"), source, update_goldens)


def test_fallback_entry_actually_falls_back():
    """The corpus keeps at least one rule on the compiled-plan fallback so
    the NDL501 path stays covered by the goldens."""

    program = parse_program((CORPUS_DIR / "fallback.ndl").read_text(), "fallback")
    source = emit_program_source(program, builtin_registry())
    assert "falls back to compiled plan" in source
    # the fallback rule still evaluates (to nothing — its plan is dead)
    db = evaluate(program, [("e", (1, 2, 3))], codegen=True)
    assert db.rows("p") == [(1, 2)]
    assert db.rows("q") == []
