"""Property tests for incremental deletion (count/re-derive retraction).

The incremental evaluator must be invisible: for any program and any
interleaved insert/delete sequence over base facts, the database kept at
fixpoint by :class:`~repro.ndlog.seminaive.IncrementalEvaluator` has to
equal the from-scratch fixpoint of the surviving facts — across recursion,
negation, aggregation, compiled and interpreted join paths, and indexed and
scan-join matching.  Randomized programs/operation sequences come from
hypothesis strategies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ndlog.ast import NDlogError
from repro.ndlog.parser import parse_program
from repro.ndlog.plan import (
    NEGATION_DELTA_SUFFIX,
    compile_rule,
    negation_delta_rules,
)
from repro.ndlog.functions import builtin_registry
from repro.ndlog.seminaive import IncrementalEvaluator, evaluate
from repro.ndlog.store import Table
from repro.protocols.pathvector import path_vector_program


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

nodes = st.integers(min_value=0, max_value=5)

edge = st.tuples(nodes, nodes, st.integers(min_value=1, max_value=4)).filter(
    lambda e: e[0] != e[1]
)

#: Interleaved base-fact operations; deletes may target absent facts (no-ops)
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), edge), min_size=1, max_size=25
)

#: The rule templates of the indexed/compiled property suites: recursion
#: (cost-bounded, hence well-founded), constants, conditions, negation,
#: aggregation, repeated variables.
RULE_TEMPLATES = [
    "p(@X,Y,C) :- e(@X,Y,C).",
    "p(@X,Z,C) :- e(@X,Y,C1), p(@Y,Z,C2), C=C1+C2, C<=8.",
    "q(@X,Y) :- p(@X,Y,C), C<={bound}.",
    "r(@X,Y) :- p(@X,Y,C), e(@Y,X,C2).",
    "s(@X,Y) :- p(@X,Y,C), X!=Y.",
    "t(@X,Y) :- q(@X,Y), !e(@X,Y,{cost}).",
    "m(@X,min<C>) :- p(@X,Y,C).",
    "k(@X,count<Y>) :- q(@X,Y).",
    "c(@X,Y) :- e(@X,Y,{cost}).",
    "w(@X,S) :- p(@X,X,C), S=C*2.",
    "v(@X,max<C>) :- p(@X,Y,C), !t(@X,Y).",
    "u(@X,sum<C>) :- e(@X,Y,C), Y>={bound2}.",
]

programs = st.builds(
    lambda picks, bound, bound2, cost: "\n".join(
        [RULE_TEMPLATES[0]]
        + [
            RULE_TEMPLATES[i].format(bound=bound, bound2=bound2, cost=cost)
            for i in sorted(picks)
        ]
    ),
    st.sets(st.integers(min_value=1, max_value=len(RULE_TEMPLATES) - 1), max_size=7),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=4),
)


def nonempty(snapshot: dict) -> dict:
    """Drop empty tables: touching a predicate materializes its table, so
    the incremental and from-scratch evaluators differ in which empty
    tables exist, never in their contents."""

    return {pred: rows for pred, rows in snapshot.items() if rows}


def apply_ops(inc: IncrementalEvaluator, ops) -> set:
    """Apply an op sequence, returning the surviving base-fact set."""

    facts: set[tuple] = set()
    for op, fact in ops:
        if op == "insert":
            facts.add(fact)
            inc.insert("e", fact)
        else:
            facts.discard(fact)
            inc.delete("e", fact)
    return facts


def assert_matches_scratch(source: str, ops, **kwargs) -> None:
    inc = IncrementalEvaluator(parse_program(source, "incremental"), **kwargs)
    inc.load()
    facts = apply_ops(inc, ops)
    scratch = evaluate(
        parse_program(source, "scratch"), [("e", f) for f in facts], **kwargs
    )
    assert nonempty(inc.db.snapshot()) == nonempty(scratch.snapshot())


# ---------------------------------------------------------------------------
# Incremental fixpoint == from-scratch fixpoint
# ---------------------------------------------------------------------------


class TestIncrementalMatchesScratch:
    @settings(max_examples=50, deadline=None)
    @given(source=programs, ops=operations)
    def test_randomized_programs_compiled(self, source, ops):
        assert_matches_scratch(source, ops)

    @settings(max_examples=20, deadline=None)
    @given(source=programs, ops=operations)
    def test_randomized_programs_interpreted(self, source, ops):
        assert_matches_scratch(source, ops, compile_rules=False)

    @settings(max_examples=20, deadline=None)
    @given(source=programs, ops=operations)
    def test_randomized_programs_scan_join(self, source, ops):
        assert_matches_scratch(source, ops, use_indexes=False)

    @settings(max_examples=25, deadline=None)
    @given(ops=operations)
    def test_cyclic_support_reach(self, ops):
        # reach has no decreasing measure, so deletions leave tuples whose
        # only remaining support is circular: exactly the case derivation
        # counts cannot decide and the DRed re-derivation phase must
        source = """
        reach(@X,Y) :- e(@X,Y,C).
        reach(@X,Z) :- e(@X,Y,C), reach(@Y,Z).
        """
        assert_matches_scratch(source, ops)

    @settings(max_examples=15, deadline=None)
    @given(ops=operations)
    def test_path_vector_link_churn(self, ops):
        # link is keyed on (src, dst): the surviving-fact model mirrors the
        # table's replacement semantics (an insert under an existing key
        # displaces, a delete only removes an exactly-matching row)
        inc = IncrementalEvaluator(path_vector_program())
        inc.load()
        facts: dict[tuple, tuple] = {}
        for op, fact in ops:
            if op == "insert":
                facts[fact[:2]] = fact
                inc.insert("link", fact)
            else:
                if facts.get(fact[:2]) == fact:
                    del facts[fact[:2]]
                inc.delete("link", fact)
        scratch = evaluate(path_vector_program(), [("link", f) for f in facts.values()])
        a = nonempty(inc.db.snapshot())
        b = nonempty(scratch.snapshot())
        # bestPath is keyed on (S, D): among equal-cost candidates the stored
        # winner is whichever derivation arrived last, which legitimately
        # differs between incremental op order and from-scratch evaluation.
        # Compare everything else exactly, bestPath on its (S, D, C)
        # projection, and require each stored winner to be a valid candidate
        # path of the other run (the tests/dn convention).
        assert {p: r for p, r in a.items() if p != "bestPath"} == {
            p: r for p, r in b.items() if p != "bestPath"
        }
        project = lambda rows: {(r[0], r[1], r[3]) for r in rows}  # noqa: E731
        assert project(a.get("bestPath", set())) == project(b.get("bestPath", set()))
        assert a.get("bestPath", set()) <= b.get("path", set())
        assert b.get("bestPath", set()) <= a.get("path", set())

    def test_keyed_cost_change_displaces_old_row(self):
        # same primary key, new cost: the displaced row's consequences must
        # be retracted before the replacement derives
        inc = IncrementalEvaluator(path_vector_program())
        inc.load([("link", ("a", "b", 1)), ("link", ("b", "a", 1))])
        inc.apply(inserts=[("link", ("a", "b", 7)), ("link", ("b", "a", 7))])
        scratch = evaluate(
            path_vector_program(), [("link", ("a", "b", 7)), ("link", ("b", "a", 7))]
        )
        assert nonempty(inc.db.snapshot()) == nonempty(scratch.snapshot())
        assert set(inc.db.rows("bestPathCost")) == set(scratch.rows("bestPathCost"))

    def test_stats_account_retractions(self):
        inc = IncrementalEvaluator(path_vector_program())
        inc.load([("link", ("a", "b", 1)), ("link", ("b", "a", 1))])
        inc.apply(deletes=[("link", ("a", "b", 1)), ("link", ("b", "a", 1))])
        assert inc.stats.retractions > 0
        assert inc.db.rows("path") == []
        assert inc.db.rows("bestPath") == []


# ---------------------------------------------------------------------------
# Derivation counting at the store level
# ---------------------------------------------------------------------------


class TestDerivationCounts:
    def test_upsert_counts_supports_and_release_decrements(self):
        table = Table("p")
        table.insert((1, 2))
        table.insert((1, 2))
        assert table.count_of((1, 2)) == 2
        assert not table.release((1, 2))  # one support left
        assert (1, 2) in table
        assert table.release((1, 2))  # last support gone, row still stored
        assert (1, 2) in table
        table.delete((1, 2))
        assert (1, 2) not in table

    def test_release_of_absent_or_replaced_row_is_stale(self):
        table = Table("route", keys=(0,))
        assert not table.release((1, "x"))
        table.insert((1, "x"))
        table.insert((1, "y"))  # key re-bound: fresh count for the new row
        assert table.count_of((1, "y")) == 1
        assert not table.release((1, "x"))  # stale retraction ignored
        assert (1, "y") in table

    def test_refresh_extends_lifetime_without_counting(self):
        table = Table("soft", keys=(0, 1), lifetime=5.0)
        table.insert((1, 2), now=0.0)
        assert table.refresh((1, 2), now=4.0)
        assert table.count_of((1, 2)) == 1
        assert table.expired(8.0) == []
        assert table.expired(9.5) == [(1, 2)]
        assert (1, 2) in table  # expired() peeks, expire() removes
        assert not table.refresh((9, 9), now=0.0)

    def test_row_expired_rechecks_lifetime(self):
        table = Table("soft", keys=(0,), lifetime=2.0)
        table.insert((1, "a"), now=0.0)
        assert table.row_expired((1, "a"), 3.0)
        table.refresh((1, "a"), now=3.0)
        assert not table.row_expired((1, "a"), 3.0)
        assert not table.row_expired((1, "b"), 10.0)  # different row


# ---------------------------------------------------------------------------
# Compiled retraction variants
# ---------------------------------------------------------------------------


class TestRetractionPlans:
    def test_fire_derivations_keeps_binding_multiplicity(self):
        # two bindings (via Y) derive the same head row: fire() dedups,
        # fire_derivations must report both supports
        program = parse_program("h(@X,Z) :- e(@X,Y), e(@Y,Z).")
        rule = program.rules[0]
        compiled = compile_rule(rule, builtin_registry())
        from repro.ndlog.store import Database

        db = Database()
        for fact in [(1, 2), (1, 3), (2, 4), (3, 4)]:
            db.insert("e", fact)
        fired = [f.values for f in compiled.fire(db)]
        derived = [f.values for f in compiled.fire_derivations(db)]
        assert fired.count((1, 4)) == 1
        assert derived.count((1, 4)) == 2

    def test_fire_derivations_rejects_aggregates(self):
        program = parse_program("m(@X,min<C>) :- e(@X,Y,C).")
        compiled = compile_rule(program.rules[0], builtin_registry())
        with pytest.raises(NDlogError, match="recomputed"):
            compiled.fire_derivations(None)

    def test_negation_delta_variant_matches_only_delta_rows(self):
        program = parse_program("h(@X) :- e(@X,Y), !q(@X,Y).")
        rule = program.rules[0]
        variants = negation_delta_rules(rule)
        assert [pred for pred, _ in variants] == ["q"]
        variant = variants[0][1]
        compiled = compile_rule(variant, builtin_registry())
        from repro.ndlog.seminaive import DeltaIndex
        from repro.ndlog.store import Database

        db = Database()
        db.insert("e", (1, 2))
        db.insert("e", (3, 4))
        db.insert("q", (3, 4))
        # only the delta q-row (1,2) triggers; the stored q-row (3,4) does not
        view = DeltaIndex({"q" + NEGATION_DELTA_SUFFIX: [(1, 2)]})
        assert [f.values for f in compiled.fire_derivations(db, view)] == [(1,)]

    def test_negation_delta_rules_skip_aggregate_heads(self):
        program = parse_program("v(@X,max<C>) :- p(@X,Y,C), !t(@X,Y).")
        assert negation_delta_rules(program.rules[0]) == ()
