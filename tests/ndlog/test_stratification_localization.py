"""Unit tests for stratification and the localization rewrite."""

import pytest

from repro.ndlog.ast import NDlogError
from repro.ndlog.localization import is_localized, localize_program, localize_rule
from repro.ndlog.parser import parse_program, parse_rule
from repro.ndlog.stratification import DependencyGraph, stratify
from repro.protocols.pathvector import PATH_VECTOR_SOURCE


class TestStratification:
    def test_path_vector_strata(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        strat = stratify(program)
        assert strat.strata["path"] < strat.strata["bestPathCost"]
        assert strat.strata["bestPathCost"] <= strat.strata["bestPath"]
        assert strat.stratum_count >= 2

    def test_negation_forces_higher_stratum(self):
        program = parse_program("p(@X) :- e(@X).\nq(@X) :- e(@X), !p(@X).")
        strat = stratify(program)
        assert strat.strata["q"] > strat.strata["p"]

    def test_unstratifiable_detected(self):
        program = parse_program("p(@X) :- e(@X), !q(@X).\nq(@X) :- e(@X), !p(@X).")
        with pytest.raises(NDlogError):
            stratify(program)

    def test_recursive_predicates(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        graph = DependencyGraph(program)
        assert "path" in graph.recursive_predicates()
        assert "bestPath" not in graph.recursive_predicates()

    def test_dependency_edges_annotated(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        graph = DependencyGraph(program)
        agg_edges = [d for d in graph.edges_into("bestPathCost")]
        assert agg_edges and all(d.aggregated for d in agg_edges)


class TestLocalization:
    def test_r2_is_not_local(self):
        rule = parse_rule(
            "r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), C=C1+C2, P=f_concatPath(S,P2)."
        )
        assert not is_localized(rule)

    def test_localize_produces_link_destination_rule(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        result = localize_program(program)
        assert result.changed
        assert result.auxiliary_predicates == ["link_d"]
        assert "r2" in result.rewritten_rules
        # every rewritten rule is now single-location
        for rule in result.program.rules:
            assert is_localized(rule), str(rule)

    def test_localized_program_preserves_materialization(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        result = localize_program(program)
        # every original declaration survives, and the shipped variant
        # inherits the source's storage semantics with its key positions
        # following the argument reordering (link(S,Z,C) -> link_d(Z,S,C))
        assert set(result.program.materialized) == set(program.materialized) | {"link_d"}
        for predicate, decl in program.materialized.items():
            assert result.program.materialized[predicate] == decl
        shipped = result.program.materialized["link_d"]
        assert shipped.lifetime == program.materialized["link"].lifetime
        assert shipped.max_size == program.materialized["link"].max_size
        assert shipped.keys == (1, 2)

    def test_shipped_soft_state_stays_soft(self):
        source = PATH_VECTOR_SOURCE.replace(
            "materialize(link, infinity, infinity, keys(1,2)).",
            "materialize(link, 4, infinity, keys(1,2)).",
        )
        result = localize_program(parse_program(source, "pv_soft"))
        assert result.program.materialized["link_d"].lifetime == 4
        assert result.program.materialized["link_d"].is_soft_state

    def test_local_rules_pass_through(self):
        program = parse_program("p(@X,Y) :- e(@X,Y), f(@X).")
        result = localize_program(program)
        assert not result.changed
        assert len(result.program.rules) == 1

    def test_non_link_restricted_rule_rejected(self):
        rule = parse_rule("r p(@X,W) :- a(@X,Y), b(@Y,Z), c(@Z,W).")
        with pytest.raises(NDlogError):
            localize_rule(rule, {})

    def test_ship_rule_reuses_auxiliary_predicate(self):
        program = parse_program(
            "p(@Z,S) :- link(@S,Z,C), other(@Z,S).\nq(@Z,S) :- link(@S,Z,C), other2(@Z,S)."
        )
        result = localize_program(program)
        assert result.auxiliary_predicates == ["link_d"]
        ship_rules = [r for r in result.program.rules if r.head.predicate == "link_d"]
        assert len(ship_rules) == 1
