"""Unit tests for the centralized NDlog evaluator."""

import pytest

from repro.ndlog.ast import NDlogError
from repro.ndlog.parser import parse_program
from repro.ndlog.seminaive import Evaluator, evaluate
from repro.protocols.pathvector import PATH_VECTOR_SOURCE


TRIANGLE = [
    ("link", ("a", "b", 1)),
    ("link", ("b", "a", 1)),
    ("link", ("b", "c", 2)),
    ("link", ("c", "b", 2)),
    ("link", ("a", "c", 5)),
    ("link", ("c", "a", 5)),
]


class TestPathVectorEvaluation:
    def test_best_paths_are_shortest(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        db = evaluate(program, TRIANGLE)
        best = {(row[0], row[1]): (row[2], row[3]) for row in db.rows("bestPath")}
        assert best[("a", "c")] == (("a", "b", "c"), 3)
        assert best[("c", "a")] == (("c", "b", "a"), 3)
        assert best[("a", "b")] == (("a", "b"), 1)
        assert len(best) == 6

    def test_paths_have_no_cycles(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        db = evaluate(program, TRIANGLE)
        for row in db.rows("path"):
            path = row[2]
            assert len(path) == len(set(path)), f"cycle in {path}"

    def test_best_cost_is_minimum_of_paths(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        db = evaluate(program, TRIANGLE)
        costs: dict = {}
        for row in db.rows("path"):
            key = (row[0], row[1])
            costs.setdefault(key, []).append(row[3])
        for s, d, c in db.rows("bestPathCost"):
            assert c == min(costs[(s, d)])

    def test_stats_reported(self):
        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        db, stats = Evaluator(program).run(TRIANGLE)
        assert stats.derived_tuples > 0
        assert stats.iterations >= 1
        assert stats.strata >= 2
        assert stats.per_predicate["path"] > 0


class TestSemantics:
    def test_negation_stratified(self):
        source = """
        reach(@X,Y) :- edge(@X,Y).
        reach(@X,Y) :- edge(@X,Z), reach(@Z,Y).
        unreachable(@X,Y) :- node(@X), node(@Y), X != Y, !reach(@X,Y).
        """
        program = parse_program(source)
        facts = [("edge", (1, 2)), ("node", (1,)), ("node", (2,)), ("node", (3,))]
        db = evaluate(program, facts)
        assert (1, 3) in db.table("unreachable")
        assert (1, 2) not in db.table("unreachable")

    def test_count_aggregate(self):
        source = "degree(@X,count<Y>) :- edge(@X,Y)."
        db = evaluate(parse_program(source), [("edge", (1, 2)), ("edge", (1, 3)), ("edge", (2, 3))])
        assert set(db.rows("degree")) == {(1, 2), (2, 1)}

    def test_max_and_sum_aggregates(self):
        source = "m(@X,max<C>) :- e(@X,C).\ns(@X,sum<C>) :- e(@X,C)."
        db = evaluate(parse_program(source), [("e", (1, 4)), ("e", (1, 6))])
        assert db.rows("m") == [(1, 6)]
        assert db.rows("s") == [(1, 10)]

    def test_assignment_evaluation_order_is_flexible(self):
        # the assignment appears before the literal binding its inputs
        source = "r p(@X,C) :- C=C1*2, e(@X,C1)."
        db = evaluate(parse_program(source), [("e", (1, 3))])
        assert db.rows("p") == [(1, 6)]

    def test_unstratifiable_program_rejected(self):
        source = "p(@X) :- q(@X), !p(@X)."
        with pytest.raises(NDlogError):
            evaluate(parse_program(source), [("q", (1,))])

    def test_fixpoint_bound(self):
        program = parse_program("p(@X,C) :- p(@X,C1), C=C1+1.\np(@X,C) :- seed(@X,C).")
        with pytest.raises(NDlogError):
            Evaluator(program).run([("seed", (1, 0))], max_iterations=10)

    def test_centralized_matches_localized(self):
        from repro.ndlog.localization import localize_program

        program = parse_program(PATH_VECTOR_SOURCE, "pv")
        localized = localize_program(program).program
        db1 = evaluate(program, TRIANGLE)
        db2 = evaluate(localized, TRIANGLE)
        assert set(db1.rows("bestPath")) == set(db2.rows("bestPath"))


class TestComparisonErrors:
    def test_uncomparable_condition_raises_evaluation_error(self):
        from repro.logic.bmc import EvaluationError

        program = parse_program("small(@X,Y) :- t(@X,Y), Y < 3.")
        with pytest.raises(EvaluationError, match="cannot compare"):
            evaluate(program, [("t", (1, "not-a-number"))])

    def test_uncomparable_operands_name_both_types(self):
        from repro.logic.bmc import EvaluationError
        from repro.ndlog.seminaive import _compare

        with pytest.raises(EvaluationError, match="str and int"):
            _compare("<=", "s", 3)

    def test_equality_on_mixed_types_still_works(self):
        # = and /= are defined for any operand pair; only orderings raise
        program = parse_program("same(@X,Y) :- t(@X,Y), Y = 3.")
        db = evaluate(program, [("t", (1, "s")), ("t", (2, 3))])
        assert db.rows("same") == [(2, 3)]
